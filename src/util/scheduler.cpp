#include "util/scheduler.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/rng.hpp"

namespace netembed::util {

const char* overloadPolicyName(OverloadPolicy p) noexcept {
  switch (p) {
    case OverloadPolicy::Block: return "block";
    case OverloadPolicy::Reject: return "reject";
    case OverloadPolicy::ShedLowestPriority: return "shed-lowest-priority";
  }
  return "?";
}

const char* qosDropReasonName(QosDropReason r) noexcept {
  switch (r) {
    case QosDropReason::Rejected: return "rejected";
    case QosDropReason::Shed: return "shed";
    case QosDropReason::Expired: return "expired";
    case QosDropReason::Cancelled: return "cancelled";
  }
  return "?";
}

namespace {

struct QueuedJob {
  QosScheduler::JobId id = 0;  // ids are monotonic => id order = admission order
  QosScheduler::Job job;
  QosScheduler::Clock::time_point admitted;  // queue-wait measurement anchor
};

struct TenantState {
  double weight = 1.0;
  double pass = 0.0;       // stride-scheduling virtual time consumed
  std::size_t queued = 0;  // jobs of this tenant across all classes
};

/// Fire an onDrop callback per its must-not-throw contract: a throw is
/// swallowed so it can never strand the `resolving` accounting (which would
/// deadlock drain()/shutdown()).
void fireDrop(QosScheduler::Job& job, QosDropReason reason) noexcept {
  if (!job.onDrop) return;
  try {
    job.onDrop(reason);
  } catch (...) {
  }
}

}  // namespace

struct QosScheduler::Impl {
  // One mutex rules the whole queue: admissions, dequeues and weight changes
  // are short critical sections, and the jobs themselves (searches taking
  // milliseconds to seconds) run far outside it.
  mutable std::mutex mutex;
  std::condition_variable workCv;   // workers: "a job is queued" / shutdown
  std::condition_variable spaceCv;  // Block submitters: "the queue shrank"
  std::condition_variable idleCv;   // drain(): "nothing queued or running"

  Options options;
  bool stopping = false;
  bool shuttingDown = false;  // a shutdown() call is in progress
  bool joined = false;        // shutdown finished: workers joined, drops done

  JobId nextId = 1;
  std::size_t queuedTotal = 0;
  std::size_t running = 0;
  // Accepted jobs popped from the queue whose onDrop is still being fired.
  // Counted so drain() cannot return between a drop decision and the
  // callback that resolves the dropped job's future.
  std::size_t resolving = 0;
  Stats stats;

  // priority class -> tenant -> FIFO. Dequeue walks the highest class; shed
  // walks the lowest. Tenant maps stay small (a handful of applications).
  std::map<int, std::map<std::uint64_t, std::deque<QueuedJob>>> classes;
  std::unordered_map<std::uint64_t, TenantState> tenants;
  // Pass of the most recent dequeue: a tenant going active re-enters at the
  // current service level instead of claiming its whole idle period back.
  double virtualTime = 0.0;

  // Queue-wait reservoir (uniform sampling, fixed footprint): every dequeue
  // — including one that expires on arrival — contributes its admission
  // latency; stats() derives p50/p99 from the sample.
  static constexpr std::size_t kWaitReservoirCap = 1024;
  std::vector<double> waitReservoir;
  std::uint64_t waitSamples = 0;
  std::uint64_t waitRngState = 0x9e3779b97f4a7c15ull;  // splitmix64 stream

  std::vector<std::thread> workers;

  void sampleWaitLocked(Clock::time_point admitted) {
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - admitted).count();
    ++waitSamples;
    if (waitReservoir.size() < kWaitReservoirCap) {
      waitReservoir.push_back(ms);
      return;
    }
    // splitmix64: cheap, deterministic, no <random> machinery under the lock.
    const std::uint64_t slot = splitmix64(waitRngState) % waitSamples;
    if (slot < kWaitReservoirCap) waitReservoir[slot] = ms;
  }

  TenantState& tenant(std::uint64_t id) { return tenants[id]; }

  void enqueueLocked(QueuedJob&& qj) {
    TenantState& ts = tenant(qj.job.tenant);
    if (ts.queued++ == 0) ts.pass = std::max(ts.pass, virtualTime);
    classes[qj.job.priority][qj.job.tenant].push_back(std::move(qj));
    ++queuedTotal;
    ++stats.accepted;
  }

  /// Remove one bookkept job (already popped from its deque).
  void noteRemovedLocked(const QueuedJob& qj) {
    --queuedTotal;
    --tenant(qj.job.tenant).queued;
    spaceCv.notify_one();
  }

  /// Erase now-empty structure around `tenantIt` in `classIt`.
  template <class ClassIt, class TenantIt>
  void pruneLocked(ClassIt classIt, TenantIt tenantIt) {
    if (tenantIt->second.empty()) classIt->second.erase(tenantIt);
    if (classIt->second.empty()) classes.erase(classIt);
  }

  /// Highest class, then the tenant with the lowest pass (ties to the lower
  /// tenant id — fully deterministic). Advances the stride clock.
  QueuedJob popFairLocked() {
    const auto classIt = std::prev(classes.end());
    auto& byTenant = classIt->second;
    auto best = byTenant.begin();
    for (auto it = std::next(best); it != byTenant.end(); ++it) {
      if (tenant(it->first).pass < tenant(best->first).pass) best = it;
    }
    TenantState& ts = tenant(best->first);
    virtualTime = ts.pass;
    ts.pass += 1.0 / std::max(ts.weight, 1e-9);
    QueuedJob qj = std::move(best->second.front());
    best->second.pop_front();
    noteRemovedLocked(qj);
    pruneLocked(classIt, best);
    return qj;
  }

  /// The most recently admitted job of the lowest queued class (the shed
  /// victim): it has waited least and its class ranks last.
  QueuedJob popShedVictimLocked() {
    const auto classIt = classes.begin();
    auto& byTenant = classIt->second;
    auto best = byTenant.begin();
    for (auto it = std::next(best); it != byTenant.end(); ++it) {
      if (it->second.back().id > best->second.back().id) best = it;
    }
    QueuedJob qj = std::move(best->second.back());
    best->second.pop_back();
    noteRemovedLocked(qj);
    pruneLocked(classIt, best);
    return qj;
  }

  void notifyIfIdleLocked() {
    if (queuedTotal == 0 && running == 0 && resolving == 0) idleCv.notify_all();
  }

  void workerLoop() {
    std::unique_lock lock(mutex);
    for (;;) {
      workCv.wait(lock, [&] { return stopping || queuedTotal > 0; });
      if (queuedTotal == 0) return;  // stopping with nothing left to run
      QueuedJob qj = popFairLocked();
      sampleWaitLocked(qj.admitted);
      if (qj.job.admitBy && Clock::now() >= *qj.job.admitBy) {
        ++stats.expired;
        ++resolving;
        lock.unlock();
        fireDrop(qj.job, QosDropReason::Expired);
        lock.lock();
        --resolving;
        notifyIfIdleLocked();
        continue;
      }
      ++running;
      lock.unlock();
      try {
        qj.job.run();
      } catch (...) {
        // The Job contract says run() must not throw; swallowing here keeps
        // one misbehaving job from taking the worker (and the queue) down.
      }
      lock.lock();
      --running;
      ++stats.completed;
      notifyIfIdleLocked();
    }
  }
};

QosScheduler::QosScheduler() : QosScheduler(Options{}) {}

QosScheduler::QosScheduler(Options options) : impl_(new Impl) {
  impl_->options = options;
  std::size_t n = options.workers;
  if (n == 0) n = std::max(1u, std::thread::hardware_concurrency());
  impl_->workers.reserve(n);
  try {
    for (std::size_t i = 0; i < n; ++i) {
      impl_->workers.emplace_back([this] { impl_->workerLoop(); });
    }
  } catch (...) {
    // Thread spawn failed (resource exhaustion): stop and join whatever
    // spawned, free the Impl, and surface the error — no zombie workers
    // parked on workCv, no leak.
    {
      std::lock_guard lock(impl_->mutex);
      impl_->stopping = true;
      impl_->workCv.notify_all();
    }
    for (std::thread& worker : impl_->workers) {
      if (worker.joinable()) worker.join();
    }
    delete impl_;
    throw;
  }
}

QosScheduler::~QosScheduler() {
  shutdown(ShutdownMode::Drain);
  delete impl_;
}

QosScheduler::JobId QosScheduler::submit(Job job) {
  // A drop decided under the lock fires its callback after release.
  std::optional<QosDropReason> dropIncoming;
  std::optional<QueuedJob> victim;
  JobId id = 0;
  {
    std::unique_lock lock(impl_->mutex);
    for (;;) {
      if (impl_->stopping) {
        ++impl_->stats.rejected;
        dropIncoming = QosDropReason::Rejected;
        break;
      }
      const std::size_t cap = impl_->options.queueCapacity;
      if (cap == 0 || impl_->queuedTotal < cap) {
        id = impl_->nextId++;
        impl_->enqueueLocked(QueuedJob{id, std::move(job), Clock::now()});
        break;
      }
      if (impl_->options.overload == OverloadPolicy::Reject) {
        ++impl_->stats.rejected;
        dropIncoming = QosDropReason::Rejected;
        break;
      }
      if (impl_->options.overload == OverloadPolicy::ShedLowestPriority) {
        ++impl_->stats.shed;
        if (job.priority > impl_->classes.begin()->first) {
          victim = impl_->popShedVictimLocked();
          ++impl_->resolving;  // until the victim's onDrop has fired
          id = impl_->nextId++;
          impl_->enqueueLocked(QueuedJob{id, std::move(job), Clock::now()});
        } else {
          // The newcomer is (at best) tied with the lowest queued class: it
          // is itself the lowest-priority work on offer, so it is the shed.
          dropIncoming = QosDropReason::Shed;
        }
        break;
      }
      // Block: wait for space, bounded by the job's own admission deadline.
      if (job.admitBy) {
        if (Clock::now() >= *job.admitBy) {
          ++impl_->stats.expired;
          dropIncoming = QosDropReason::Expired;
          break;
        }
        impl_->spaceCv.wait_until(lock, *job.admitBy);
      } else {
        impl_->spaceCv.wait(lock);
      }
    }
    // Account the incoming drop like every other: its onDrop (fired below,
    // outside the lock) may touch the submitting service, so shutdown must
    // not report done until it has run.
    if (dropIncoming) ++impl_->resolving;
  }
  if (victim) {
    fireDrop(victim->job, QosDropReason::Shed);
    std::lock_guard lock(impl_->mutex);
    --impl_->resolving;
    impl_->notifyIfIdleLocked();
  }
  if (dropIncoming) {
    fireDrop(job, *dropIncoming);
    std::lock_guard lock(impl_->mutex);
    --impl_->resolving;
    impl_->notifyIfIdleLocked();
    return 0;
  }
  impl_->workCv.notify_one();
  return id;
}

bool QosScheduler::cancel(JobId id) {
  std::optional<QueuedJob> dropped;
  {
    std::lock_guard lock(impl_->mutex);
    // Return right after pruneLocked: it may erase the iterators being
    // walked, so no loop may advance past the removal point.
    const auto findAndErase = [&]() -> bool {
      for (auto classIt = impl_->classes.begin();
           classIt != impl_->classes.end(); ++classIt) {
        for (auto tenantIt = classIt->second.begin();
             tenantIt != classIt->second.end(); ++tenantIt) {
          auto& fifo = tenantIt->second;
          const auto it =
              std::find_if(fifo.begin(), fifo.end(),
                           [&](const QueuedJob& qj) { return qj.id == id; });
          if (it == fifo.end()) continue;
          dropped = std::move(*it);
          fifo.erase(it);
          ++impl_->stats.cancelled;
          ++impl_->resolving;  // until onDrop below has fired
          impl_->noteRemovedLocked(*dropped);
          impl_->pruneLocked(classIt, tenantIt);
          return true;
        }
      }
      return false;
    };
    findAndErase();
  }
  if (!dropped) return false;
  fireDrop(dropped->job, QosDropReason::Cancelled);
  {
    std::lock_guard lock(impl_->mutex);
    --impl_->resolving;
    impl_->notifyIfIdleLocked();
  }
  return true;
}

void QosScheduler::setTenantWeight(std::uint64_t tenant, double weight) {
  std::lock_guard lock(impl_->mutex);
  impl_->tenants[tenant].weight = std::max(weight, 1e-9);
}

void QosScheduler::drain() {
  std::unique_lock lock(impl_->mutex);
  impl_->idleCv.wait(lock, [&] {
    return impl_->queuedTotal == 0 && impl_->running == 0 &&
           impl_->resolving == 0;
  });
}

void QosScheduler::shutdown(ShutdownMode mode) {
  std::vector<QueuedJob> dropped;
  {
    std::unique_lock lock(impl_->mutex);
    if (impl_->shuttingDown) {
      // Another thread is (or was) shutting down; wait for it to finish
      // rather than double-joining the same workers.
      impl_->idleCv.wait(lock, [&] { return impl_->joined; });
      return;
    }
    impl_->shuttingDown = true;
    impl_->stopping = true;
    if (mode == ShutdownMode::CancelPending) {
      for (auto& [priority, byTenant] : impl_->classes) {
        (void)priority;
        for (auto& [tenant, fifo] : byTenant) {
          (void)tenant;
          for (QueuedJob& qj : fifo) dropped.push_back(std::move(qj));
        }
      }
      impl_->classes.clear();
      impl_->queuedTotal = 0;
      for (auto& [id, ts] : impl_->tenants) {
        (void)id;
        ts.queued = 0;
      }
      impl_->stats.cancelled += dropped.size();
      impl_->resolving += dropped.size();  // until the drops below have fired
    }
    impl_->workCv.notify_all();
    impl_->spaceCv.notify_all();
  }
  // Resolve the dropped queue before the (possibly long) join so waiters on
  // those jobs' results unblock immediately.
  for (QueuedJob& qj : dropped) {
    fireDrop(qj.job, QosDropReason::Cancelled);
  }
  if (!dropped.empty()) {
    std::lock_guard lock(impl_->mutex);
    impl_->resolving -= dropped.size();
    impl_->notifyIfIdleLocked();
  }
  for (std::thread& worker : impl_->workers) {
    if (worker.joinable()) worker.join();
  }
  std::unique_lock lock(impl_->mutex);
  // A concurrent cancel() may still be mid-onDrop (it popped its job before
  // the queue was cleared); the callback can touch the submitting service,
  // so shutdown must not report done — and let that service die — until
  // every drop has fired.
  impl_->idleCv.wait(lock, [&] { return impl_->resolving == 0; });
  impl_->joined = true;
  impl_->idleCv.notify_all();
}

std::size_t QosScheduler::queuedCount() const {
  std::lock_guard lock(impl_->mutex);
  return impl_->queuedTotal;
}

std::size_t QosScheduler::runningCount() const {
  std::lock_guard lock(impl_->mutex);
  return impl_->running;
}

std::size_t QosScheduler::pending() const {
  std::lock_guard lock(impl_->mutex);
  return impl_->queuedTotal + impl_->running;
}

std::size_t QosScheduler::workerCount() const noexcept {
  return impl_->workers.size();
}

QosScheduler::Stats QosScheduler::stats() const {
  std::lock_guard lock(impl_->mutex);
  Stats out = impl_->stats;
  out.admissionWaitSamples = impl_->waitSamples;
  if (!impl_->waitReservoir.empty()) {
    std::vector<double> sorted = impl_->waitReservoir;
    std::sort(sorted.begin(), sorted.end());
    const auto at = [&](double q) {
      return sorted[static_cast<std::size_t>(q * (sorted.size() - 1))];
    };
    out.admissionWaitP50Ms = at(0.5);
    out.admissionWaitP99Ms = at(0.99);
  }
  return out;
}

}  // namespace netembed::util
