#include "util/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/fault.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace netembed::util {

const char* overloadPolicyName(OverloadPolicy p) noexcept {
  switch (p) {
    case OverloadPolicy::Block: return "block";
    case OverloadPolicy::Reject: return "reject";
    case OverloadPolicy::ShedLowestPriority: return "shed-lowest-priority";
  }
  return "?";
}

const char* qosDropReasonName(QosDropReason r) noexcept {
  switch (r) {
    case QosDropReason::Rejected: return "rejected";
    case QosDropReason::Shed: return "shed";
    case QosDropReason::Expired: return "expired";
    case QosDropReason::Cancelled: return "cancelled";
  }
  return "?";
}

namespace {

struct QueuedJob {
  QosScheduler::JobId id = 0;  // ids are monotonic => id order = admission order
  QosScheduler::Job job;
  QosScheduler::Clock::time_point admitted;  // queue-wait measurement anchor
};

struct TenantState {
  double weight = 1.0;
  double pass = 0.0;       // stride-scheduling virtual time consumed
  std::size_t queued = 0;  // jobs of this tenant across all classes
};

/// Fire an onDrop callback per its must-not-throw contract: a throw is
/// swallowed so it can never strand the `resolving` accounting (which would
/// deadlock drain()/shutdown()).
void fireDrop(QosScheduler::Job& job, QosDropReason reason) noexcept {
  if (!job.onDrop) return;
  try {
    job.onDrop(reason);
  } catch (...) {
  }
}

}  // namespace

struct QosScheduler::Impl {
  // One mutex rules the whole queue: admissions, dequeues and weight changes
  // are short critical sections, and the jobs themselves (searches taking
  // milliseconds to seconds) run far outside it.
  mutable std::mutex mutex;
  std::condition_variable workCv;   // workers: "a job is queued" / shutdown
  std::condition_variable spaceCv;  // Block submitters: "the queue shrank"
  std::condition_variable idleCv;   // drain(): "nothing queued or running"

  Options options;
  bool stopping = false;
  bool shuttingDown = false;  // a shutdown() call is in progress
  bool joined = false;        // shutdown finished: workers joined, drops done

  JobId nextId = 1;
  std::size_t queuedTotal = 0;
  std::size_t running = 0;
  // Accepted jobs popped from the queue whose onDrop is still being fired.
  // Counted so drain() cannot return between a drop decision and the
  // callback that resolves the dropped job's future.
  std::size_t resolving = 0;
  Stats stats;

  // priority class -> tenant -> FIFO. Dequeue walks the highest class; shed
  // walks the lowest. Tenant maps stay small (a handful of applications).
  std::map<int, std::map<std::uint64_t, std::deque<QueuedJob>>> classes;
  std::unordered_map<std::uint64_t, TenantState> tenants;
  // Pass of the most recent dequeue: a tenant going active re-enters at the
  // current service level instead of claiming its whole idle period back.
  double virtualTime = 0.0;

  // Queue-wait reservoir (uniform sampling, fixed footprint): every dequeue
  // — including one that expires on arrival — contributes its admission
  // latency; stats() derives p50/p99 from the sample.
  static constexpr std::size_t kWaitReservoirCap = 1024;
  std::vector<double> waitReservoir;
  std::uint64_t waitSamples = 0;
  std::uint64_t waitRngState = 0x9e3779b97f4a7c15ull;  // splitmix64 stream

  // Per-priority-class controller inputs: a service-time EWMA from completed
  // jobs and a smaller per-class wait reservoir. The adaptive capacity is a
  // Little's-law inversion over the completion-weighted mean of the EWMAs.
  static constexpr std::size_t kClassReservoirCap = 512;
  struct ClassTrack {
    std::uint64_t completed = 0;
    double serviceEwmaMs = 0.0;
    std::vector<double> waitReservoir;
    std::uint64_t waitSamples = 0;
    std::uint64_t rngState = 0xbf58476d1ce4e5b9ull;
  };
  std::map<int, ClassTrack> classTrack;

  std::size_t workerCountHint = 1;  // set before the threads spawn
  std::vector<std::thread> workers;

  static void reservoirAddLocked(std::vector<double>& reservoir,
                                 std::uint64_t& samples, std::uint64_t& rng,
                                 std::size_t cap, double ms) {
    ++samples;
    if (reservoir.size() < cap) {
      reservoir.push_back(ms);
      return;
    }
    // splitmix64: cheap, deterministic, no <random> machinery under the lock.
    const std::uint64_t slot = splitmix64(rng) % samples;
    if (slot < cap) reservoir[slot] = ms;
  }

  void sampleWaitLocked(Clock::time_point admitted, int priority) {
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - admitted).count();
    reservoirAddLocked(waitReservoir, waitSamples, waitRngState,
                       kWaitReservoirCap, ms);
    ClassTrack& ct = classTrack[priority];
    reservoirAddLocked(ct.waitReservoir, ct.waitSamples, ct.rngState,
                       kClassReservoirCap, ms);
  }

  void recordServiceLocked(int priority, double serviceMs) {
    ClassTrack& ct = classTrack[priority];
    const double alpha =
        std::clamp(options.control.ewmaAlpha, 1e-6, 1.0);
    ct.serviceEwmaMs = ct.completed == 0
                           ? serviceMs
                           : alpha * serviceMs + (1.0 - alpha) * ct.serviceEwmaMs;
    ++ct.completed;
  }

  /// The capacity admissions check against right now. Static queueCapacity
  /// until the controller has at least one completed job to learn from (or
  /// when adaptive control is off); then targetQueueDelay * workers / mean
  /// service time, clamped. 0 = unbounded.
  [[nodiscard]] std::size_t effectiveCapacityLocked() const {
    if (!options.control.adaptiveCapacity) return options.queueCapacity;
    std::uint64_t completed = 0;
    double weightedMs = 0.0;
    for (const auto& [priority, ct] : classTrack) {
      (void)priority;
      completed += ct.completed;
      weightedMs += ct.serviceEwmaMs * static_cast<double>(ct.completed);
    }
    if (completed == 0) return options.queueCapacity;
    const double meanMs = weightedMs / static_cast<double>(completed);
    const double targetMs = std::chrono::duration<double, std::milli>(
                                options.control.targetQueueDelay)
                                .count();
    if (meanMs <= 0.0 || targetMs <= 0.0) return options.control.minCapacity;
    const double derived =
        std::ceil(targetMs * static_cast<double>(workerCountHint) / meanMs);
    const auto lo = static_cast<double>(std::max<std::size_t>(
        options.control.minCapacity, 1));
    const auto hi = static_cast<double>(
        std::max<std::size_t>(options.control.maxCapacity, 1));
    return static_cast<std::size_t>(std::clamp(derived, lo, std::max(lo, hi)));
  }

  TenantState& tenant(std::uint64_t id) { return tenants[id]; }

  void enqueueLocked(QueuedJob&& qj) {
    TenantState& ts = tenant(qj.job.tenant);
    if (ts.queued++ == 0) ts.pass = std::max(ts.pass, virtualTime);
    auto& fifo = classes[qj.job.priority][qj.job.tenant];
    // EDF within the bucket: deadline-bearing jobs sort ahead of unbounded
    // ones by earliest admitBy; ties — and the no-deadline common case —
    // fall back to id order, i.e. admission order, so a deadline-free bucket
    // is exactly the historical FIFO.
    const auto before = [](const QueuedJob& a, const QueuedJob& b) {
      const bool ad = a.job.admitBy.has_value();
      const bool bd = b.job.admitBy.has_value();
      if (ad != bd) return ad;
      if (ad && *a.job.admitBy != *b.job.admitBy)
        return *a.job.admitBy < *b.job.admitBy;
      return a.id < b.id;
    };
    fifo.insert(std::upper_bound(fifo.begin(), fifo.end(), qj, before),
                std::move(qj));
    ++queuedTotal;
    ++stats.accepted;
  }

  /// Remove one bookkept job (already popped from its deque).
  void noteRemovedLocked(const QueuedJob& qj) {
    --queuedTotal;
    --tenant(qj.job.tenant).queued;
    spaceCv.notify_one();
  }

  /// Erase now-empty structure around `tenantIt` in `classIt`.
  template <class ClassIt, class TenantIt>
  void pruneLocked(ClassIt classIt, TenantIt tenantIt) {
    if (tenantIt->second.empty()) classIt->second.erase(tenantIt);
    if (classIt->second.empty()) classes.erase(classIt);
  }

  /// Highest class, then the tenant with the lowest pass (ties to the lower
  /// tenant id — fully deterministic). Does NOT advance the stride clock:
  /// the caller charges via chargeStrideLocked only when the job actually
  /// dispatches, so a job that expired in the queue costs its tenant nothing
  /// (an expired pop used to charge a full quantum, bleeding fair share from
  /// deadline-heavy tenants to their neighbors).
  QueuedJob popFairLocked() {
    const auto classIt = std::prev(classes.end());
    auto& byTenant = classIt->second;
    auto best = byTenant.begin();
    for (auto it = std::next(best); it != byTenant.end(); ++it) {
      if (tenant(it->first).pass < tenant(best->first).pass) best = it;
    }
    QueuedJob qj = std::move(best->second.front());
    best->second.pop_front();
    noteRemovedLocked(qj);
    pruneLocked(classIt, best);
    return qj;
  }

  /// Advance the stride clock for one dispatched job of `tenantId`.
  void chargeStrideLocked(std::uint64_t tenantId) {
    TenantState& ts = tenant(tenantId);
    virtualTime = ts.pass;
    ts.pass += 1.0 / std::max(ts.weight, 1e-9);
  }

  /// The most recently admitted job of the lowest queued class (the shed
  /// victim): it has waited least and its class ranks last. Buckets are
  /// deadline-sorted (EDF), so the highest id can sit anywhere in a deque —
  /// scan the whole class, not just the backs.
  QueuedJob popShedVictimLocked() {
    const auto classIt = classes.begin();
    auto& byTenant = classIt->second;
    auto bestTenant = byTenant.begin();
    auto bestJob = bestTenant->second.begin();
    for (auto it = byTenant.begin(); it != byTenant.end(); ++it) {
      for (auto jt = it->second.begin(); jt != it->second.end(); ++jt) {
        if (jt->id > bestJob->id) {
          bestTenant = it;
          bestJob = jt;
        }
      }
    }
    QueuedJob qj = std::move(*bestJob);
    bestTenant->second.erase(bestJob);
    noteRemovedLocked(qj);
    pruneLocked(classIt, bestTenant);
    return qj;
  }

  void notifyIfIdleLocked() {
    if (queuedTotal == 0 && running == 0 && resolving == 0) idleCv.notify_all();
  }

  void workerLoop() {
    std::unique_lock lock(mutex);
    for (;;) {
      workCv.wait(lock, [&] { return stopping || queuedTotal > 0; });
      if (queuedTotal == 0) return;  // stopping with nothing left to run
      QueuedJob qj = popFairLocked();
      sampleWaitLocked(qj.admitted, qj.job.priority);
      if (qj.job.admitBy && Clock::now() >= *qj.job.admitBy) {
        // Expired on arrival: no stride charge — the tenant got no service.
        ++stats.expired;
        ++resolving;
        lock.unlock();
        fireDrop(qj.job, QosDropReason::Expired);
        lock.lock();
        --resolving;
        notifyIfIdleLocked();
        continue;
      }
      chargeStrideLocked(qj.job.tenant);
      ++running;
      lock.unlock();
      // Injected dispatch-latency spike (clock skew / noisy-neighbor
      // scheduling delay). Delay-only and outside the lock: the rest of the
      // scheduler keeps admitting and dispatching while this worker stalls.
      if (FaultInjector::enabled()) faultDelay(faultsite::kQosDequeue);
      const Clock::time_point started = Clock::now();
      try {
        qj.job.run();
      } catch (...) {
        // The Job contract says run() must not throw; swallowing here keeps
        // one misbehaving job from taking the worker (and the queue) down.
      }
      const double serviceMs =
          std::chrono::duration<double, std::milli>(Clock::now() - started)
              .count();
      lock.lock();
      --running;
      ++stats.completed;
      recordServiceLocked(qj.job.priority, serviceMs);
      // New service-time data can grow the adaptive capacity — wake Block
      // submitters so they re-check against the new bound.
      if (options.control.adaptiveCapacity) spaceCv.notify_all();
      notifyIfIdleLocked();
    }
  }
};

QosScheduler::QosScheduler() : QosScheduler(Options{}) {}

QosScheduler::QosScheduler(Options options) : impl_(new Impl) {
  impl_->options = options;
  std::size_t n = options.workers;
  if (n == 0) n = std::max(1u, std::thread::hardware_concurrency());
  impl_->workerCountHint = n;
  impl_->workers.reserve(n);
  try {
    for (std::size_t i = 0; i < n; ++i) {
      impl_->workers.emplace_back([this] { impl_->workerLoop(); });
    }
  } catch (...) {
    // Thread spawn failed (resource exhaustion): stop and join whatever
    // spawned, free the Impl, and surface the error — no zombie workers
    // parked on workCv, no leak.
    {
      std::lock_guard lock(impl_->mutex);
      impl_->stopping = true;
      impl_->workCv.notify_all();
    }
    for (std::thread& worker : impl_->workers) {
      if (worker.joinable()) worker.join();
    }
    delete impl_;
    throw;
  }
}

QosScheduler::~QosScheduler() {
  shutdown(ShutdownMode::Drain);
  delete impl_;
}

QosScheduler::JobId QosScheduler::submit(Job job) {
  return submitImpl(std::move(job), /*allowBlock=*/true);
}

QosScheduler::JobId QosScheduler::trySubmit(Job job) {
  return submitImpl(std::move(job), /*allowBlock=*/false);
}

QosScheduler::JobId QosScheduler::submitImpl(Job job, bool allowBlock) {
  // A drop decided under the lock fires its callback after release.
  std::optional<QosDropReason> dropIncoming;
  std::optional<QueuedJob> victim;
  JobId id = 0;
  {
    std::unique_lock lock(impl_->mutex);
    for (;;) {
      if (impl_->stopping) {
        ++impl_->stats.rejected;
        dropIncoming = QosDropReason::Rejected;
        break;
      }
      const std::size_t cap = impl_->effectiveCapacityLocked();
      // Early watermark shed (ShedLowestPriority only): past the configured
      // fraction of capacity, a newcomer strictly below the highest queued
      // class is shed on arrival — the remaining headroom is reserved for
      // the top class instead of being consumed first-come-first-served.
      const double watermark = impl_->options.control.lowPriorityShedWatermark;
      if (impl_->options.overload == OverloadPolicy::ShedLowestPriority &&
          watermark < 1.0 && cap > 0 && !impl_->classes.empty() &&
          impl_->queuedTotal >=
              std::max<std::size_t>(
                  1, static_cast<std::size_t>(
                         std::ceil(watermark * static_cast<double>(cap)))) &&
          job.priority < std::prev(impl_->classes.end())->first) {
        ++impl_->stats.shed;
        dropIncoming = QosDropReason::Shed;
        break;
      }
      if (cap == 0 || impl_->queuedTotal < cap) {
        id = impl_->nextId++;
        impl_->enqueueLocked(QueuedJob{id, std::move(job), Clock::now()});
        break;
      }
      if (impl_->options.overload == OverloadPolicy::Reject ||
          (impl_->options.overload == OverloadPolicy::Block && !allowBlock)) {
        ++impl_->stats.rejected;
        dropIncoming = QosDropReason::Rejected;
        break;
      }
      if (impl_->options.overload == OverloadPolicy::ShedLowestPriority) {
        ++impl_->stats.shed;
        if (job.priority > impl_->classes.begin()->first) {
          victim = impl_->popShedVictimLocked();
          ++impl_->resolving;  // until the victim's onDrop has fired
          id = impl_->nextId++;
          impl_->enqueueLocked(QueuedJob{id, std::move(job), Clock::now()});
        } else {
          // The newcomer is (at best) tied with the lowest queued class: it
          // is itself the lowest-priority work on offer, so it is the shed.
          dropIncoming = QosDropReason::Shed;
        }
        break;
      }
      // Block: wait for space, bounded by the job's own admission deadline.
      if (job.admitBy) {
        if (Clock::now() >= *job.admitBy) {
          ++impl_->stats.expired;
          dropIncoming = QosDropReason::Expired;
          break;
        }
        impl_->spaceCv.wait_until(lock, *job.admitBy);
      } else {
        impl_->spaceCv.wait(lock);
      }
    }
    // Account the incoming drop like every other: its onDrop (fired below,
    // outside the lock) may touch the submitting service, so shutdown must
    // not report done until it has run.
    if (dropIncoming) ++impl_->resolving;
  }
  if (victim) {
    fireDrop(victim->job, QosDropReason::Shed);
    std::lock_guard lock(impl_->mutex);
    --impl_->resolving;
    impl_->notifyIfIdleLocked();
  }
  if (dropIncoming) {
    fireDrop(job, *dropIncoming);
    std::lock_guard lock(impl_->mutex);
    --impl_->resolving;
    impl_->notifyIfIdleLocked();
    return 0;
  }
  impl_->workCv.notify_one();
  return id;
}

bool QosScheduler::cancel(JobId id) {
  std::optional<QueuedJob> dropped;
  {
    std::lock_guard lock(impl_->mutex);
    // Return right after pruneLocked: it may erase the iterators being
    // walked, so no loop may advance past the removal point.
    const auto findAndErase = [&]() -> bool {
      for (auto classIt = impl_->classes.begin();
           classIt != impl_->classes.end(); ++classIt) {
        for (auto tenantIt = classIt->second.begin();
             tenantIt != classIt->second.end(); ++tenantIt) {
          auto& fifo = tenantIt->second;
          const auto it =
              std::find_if(fifo.begin(), fifo.end(),
                           [&](const QueuedJob& qj) { return qj.id == id; });
          if (it == fifo.end()) continue;
          dropped = std::move(*it);
          fifo.erase(it);
          ++impl_->stats.cancelled;
          ++impl_->resolving;  // until onDrop below has fired
          impl_->noteRemovedLocked(*dropped);
          impl_->pruneLocked(classIt, tenantIt);
          return true;
        }
      }
      return false;
    };
    findAndErase();
  }
  if (!dropped) return false;
  fireDrop(dropped->job, QosDropReason::Cancelled);
  {
    std::lock_guard lock(impl_->mutex);
    --impl_->resolving;
    impl_->notifyIfIdleLocked();
  }
  return true;
}

void QosScheduler::setTenantWeight(std::uint64_t tenant, double weight) {
  std::lock_guard lock(impl_->mutex);
  impl_->tenants[tenant].weight = std::max(weight, 1e-9);
}

void QosScheduler::drain() {
  std::unique_lock lock(impl_->mutex);
  impl_->idleCv.wait(lock, [&] {
    return impl_->queuedTotal == 0 && impl_->running == 0 &&
           impl_->resolving == 0;
  });
}

void QosScheduler::shutdown(ShutdownMode mode) {
  std::vector<QueuedJob> dropped;
  {
    std::unique_lock lock(impl_->mutex);
    if (impl_->shuttingDown) {
      // Another thread is (or was) shutting down; wait for it to finish
      // rather than double-joining the same workers.
      impl_->idleCv.wait(lock, [&] { return impl_->joined; });
      return;
    }
    impl_->shuttingDown = true;
    impl_->stopping = true;
    if (mode == ShutdownMode::CancelPending) {
      for (auto& [priority, byTenant] : impl_->classes) {
        (void)priority;
        for (auto& [tenant, fifo] : byTenant) {
          (void)tenant;
          for (QueuedJob& qj : fifo) dropped.push_back(std::move(qj));
        }
      }
      impl_->classes.clear();
      impl_->queuedTotal = 0;
      for (auto& [id, ts] : impl_->tenants) {
        (void)id;
        ts.queued = 0;
      }
      impl_->stats.cancelled += dropped.size();
      impl_->resolving += dropped.size();  // until the drops below have fired
    }
    impl_->workCv.notify_all();
    impl_->spaceCv.notify_all();
  }
  // Resolve the dropped queue before the (possibly long) join so waiters on
  // those jobs' results unblock immediately.
  for (QueuedJob& qj : dropped) {
    fireDrop(qj.job, QosDropReason::Cancelled);
  }
  if (!dropped.empty()) {
    std::lock_guard lock(impl_->mutex);
    impl_->resolving -= dropped.size();
    impl_->notifyIfIdleLocked();
  }
  for (std::thread& worker : impl_->workers) {
    if (worker.joinable()) worker.join();
  }
  std::unique_lock lock(impl_->mutex);
  // A concurrent cancel() may still be mid-onDrop (it popped its job before
  // the queue was cleared); the callback can touch the submitting service,
  // so shutdown must not report done — and let that service die — until
  // every drop has fired.
  impl_->idleCv.wait(lock, [&] { return impl_->resolving == 0; });
  impl_->joined = true;
  impl_->idleCv.notify_all();
}

std::size_t QosScheduler::queuedCount() const {
  std::lock_guard lock(impl_->mutex);
  return impl_->queuedTotal;
}

std::size_t QosScheduler::runningCount() const {
  std::lock_guard lock(impl_->mutex);
  return impl_->running;
}

std::size_t QosScheduler::pending() const {
  std::lock_guard lock(impl_->mutex);
  return impl_->queuedTotal + impl_->running;
}

std::size_t QosScheduler::workerCount() const noexcept {
  return impl_->workers.size();
}

QosScheduler::Stats QosScheduler::stats() const {
  std::lock_guard lock(impl_->mutex);
  Stats out = impl_->stats;
  out.admissionWaitSamples = impl_->waitSamples;
  if (!impl_->waitReservoir.empty()) {
    out.admissionWaitP50Ms = quantileNearestRank(impl_->waitReservoir, 0.5);
    out.admissionWaitP99Ms = quantileNearestRank(impl_->waitReservoir, 0.99);
  }
  out.classes.reserve(impl_->classTrack.size());
  for (const auto& [priority, ct] : impl_->classTrack) {
    Stats::ClassStats cs;
    cs.priority = priority;
    cs.completed = ct.completed;
    cs.serviceEwmaMs = ct.serviceEwmaMs;
    cs.waitSamples = ct.waitSamples;
    if (!ct.waitReservoir.empty()) {
      cs.waitP50Ms = quantileNearestRank(ct.waitReservoir, 0.5);
      cs.waitP99Ms = quantileNearestRank(ct.waitReservoir, 0.99);
    }
    out.classes.push_back(cs);
  }
  out.effectiveCapacity = impl_->effectiveCapacityLocked();
  return out;
}

}  // namespace netembed::util
