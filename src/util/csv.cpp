#include "util/csv.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace netembed::util {

namespace {
bool needsQuoting(const std::string& s) {
  return s.find_first_of(",\"\n\r") != std::string::npos;
}

std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) *out_ << ',';
    *out_ << (needsQuoting(fields[i]) ? quoted(fields[i]) : fields[i]);
  }
  *out_ << '\n';
}

std::string CsvWriter::field(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string CsvWriter::field(long long v) { return std::to_string(v); }
std::string CsvWriter::field(unsigned long long v) { return std::to_string(v); }

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::addRow(std::vector<std::string> row) {
  row.resize(headers_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::print(std::ostream& out) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size()) out << std::string(width[c] - row[c].size() + 2, ' ');
    }
    out << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string formatFixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

}  // namespace netembed::util
