#include "util/csv.hpp"

#include <algorithm>
#include <cstdio>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace netembed::util {

namespace {
bool needsQuoting(const std::string& s) {
  return s.find_first_of(",\"\n\r") != std::string::npos;
}

std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) *out_ << ',';
    *out_ << (needsQuoting(fields[i]) ? quoted(fields[i]) : fields[i]);
  }
  *out_ << '\n';
}

std::string CsvWriter::field(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string CsvWriter::field(long long v) { return std::to_string(v); }
std::string CsvWriter::field(unsigned long long v) { return std::to_string(v); }

bool CsvReader::row(std::vector<std::string>& fields) {
  fields.clear();
  std::istream& in = *in_;
  int c = in.get();
  // Skip blank lines between records (CsvWriter never emits them, but hand-
  // edited trace files may).
  while (c == '\n' || c == '\r') c = in.get();
  if (c == std::istream::traits_type::eof()) return false;

  std::string field;
  bool quoted = false;
  bool fieldStarted = true;
  const auto endField = [&] {
    fields.push_back(std::move(field));
    field.clear();
    quoted = false;
  };
  while (true) {
    if (c == std::istream::traits_type::eof()) {
      if (quoted) {
        throw std::runtime_error("CsvReader: unterminated quoted field at record " +
                                 std::to_string(rows_ + 1));
      }
      endField();
      break;
    }
    const char ch = static_cast<char>(c);
    if (quoted) {
      if (ch == '"') {
        const int next = in.get();
        if (next == '"') {
          field += '"';  // doubled quote inside a quoted field
        } else {
          quoted = false;
          c = next;
          // After the closing quote only a separator, record end, or EOF may
          // follow.
          if (c != ',' && c != '\n' && c != '\r' &&
              c != std::istream::traits_type::eof()) {
            throw std::runtime_error(
                "CsvReader: garbage after closing quote at record " +
                std::to_string(rows_ + 1));
          }
          continue;
        }
      } else {
        field += ch;
      }
    } else if (ch == '"' && fieldStarted && field.empty()) {
      quoted = true;
    } else if (ch == ',') {
      endField();
      fieldStarted = true;
      c = in.get();
      continue;
    } else if (ch == '\n' || ch == '\r') {
      if (ch == '\r' && in.peek() == '\n') in.get();
      endField();
      break;
    } else {
      field += ch;
    }
    fieldStarted = false;
    c = in.get();
  }
  ++rows_;
  return true;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::addRow(std::vector<std::string> row) {
  row.resize(headers_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::print(std::ostream& out) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size()) out << std::string(width[c] - row[c].size() + 2, ' ');
    }
    out << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string formatFixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

}  // namespace netembed::util
