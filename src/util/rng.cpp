#include "util/rng.hpp"

#include <cmath>

namespace netembed::util {

double Rng::sqrtApprox(double x) noexcept { return std::sqrt(x); }
double Rng::logApprox(double x) noexcept { return std::log(x); }

}  // namespace netembed::util
