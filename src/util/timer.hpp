#pragma once
// Wall-clock helpers: Stopwatch for measuring, Deadline for bounding search.

#include <chrono>
#include <cstdint>

namespace netembed::util {

/// Monotonic stopwatch with millisecond-resolution reporting.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(Clock::now()) {}

  void restart() noexcept { start_ = Clock::now(); }

  [[nodiscard]] double elapsedMs() const noexcept {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_).count();
  }

  [[nodiscard]] double elapsedSeconds() const noexcept { return elapsedMs() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A soft deadline. A zero duration means "no deadline" (never expires).
///
/// Search engines poll expired() at a coarse stride so the cost of the clock
/// read is amortized over thousands of visited tree nodes.
class Deadline {
 public:
  Deadline() noexcept = default;  // unbounded

  explicit Deadline(std::chrono::milliseconds budget) noexcept {
    if (budget.count() > 0) {
      bounded_ = true;
      expires_ = Clock::now() + budget;
    }
  }

  [[nodiscard]] static Deadline unbounded() noexcept { return Deadline{}; }

  [[nodiscard]] bool isBounded() const noexcept { return bounded_; }

  [[nodiscard]] bool expired() const noexcept {
    return bounded_ && Clock::now() >= expires_;
  }

  /// Remaining time in milliseconds; a large sentinel when unbounded.
  [[nodiscard]] double remainingMs() const noexcept {
    if (!bounded_) return 1e18;
    return std::chrono::duration<double, std::milli>(expires_ - Clock::now()).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  bool bounded_ = false;
  Clock::time_point expires_{};
};

}  // namespace netembed::util
