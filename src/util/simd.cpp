#include "util/simd.hpp"

#include <atomic>
#include <bit>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <string>

#if defined(__aarch64__)
#include <arm_neon.h>
#endif
#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#endif

namespace netembed::util::simd {

namespace {

/// Parse the NETEMBED_SIMD override; returns true and sets `out` on a
/// recognized value. Unrecognized values are ignored (auto-detect wins) —
/// a typo in an env var must not silently change behavior to the slowest
/// path without the operator noticing the requested name did nothing.
bool parseIsaEnv(Isa& out) noexcept {
  const char* raw = std::getenv("NETEMBED_SIMD");
  if (raw == nullptr || *raw == '\0') return false;
  std::string v(raw);
  for (char& c : v) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (v == "scalar") {
    out = Isa::Scalar;
    return true;
  }
  if (v == "avx2") {
    out = Isa::Avx2;
    return true;
  }
  if (v == "avx512") {
    out = Isa::Avx512;
    return true;
  }
  if (v == "neon") {
    out = Isa::Neon;
    return true;
  }
  return false;
}

Isa detectBestIsa() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  // AVX-512: the kernels use F (512-bit integer ops) and BW (byte shuffles
  // in the popcount). VL/DQ are not required.
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw")) {
    return Isa::Avx512;
  }
  if (__builtin_cpu_supports("avx2")) return Isa::Avx2;
  return Isa::Scalar;
#elif defined(__aarch64__)
  return Isa::Neon;  // NEON is architectural on AArch64
#else
  return Isa::Scalar;
#endif
}

Isa clampToSupported(Isa requested) noexcept {
  if (requested == Isa::Scalar) return Isa::Scalar;
  const Isa best = detectBestIsa();
#if defined(__x86_64__) || defined(_M_X64)
  if (requested == Isa::Neon) return Isa::Scalar;  // wrong architecture
  if (requested == Isa::Avx512 && best != Isa::Avx512) {
    return best;  // Avx2 or Scalar, whichever the CPU has
  }
  if (requested == Isa::Avx2 && best == Isa::Scalar) return Isa::Scalar;
  return requested;
#elif defined(__aarch64__)
  return requested == Isa::Neon ? Isa::Neon : Isa::Scalar;
#else
  (void)best;
  return Isa::Scalar;
#endif
}

Isa initialIsa() noexcept {
  Isa requested;
  if (parseIsaEnv(requested)) return clampToSupported(requested);
  return detectBestIsa();
}

/// Startup-resolved, test-overridable dispatch knob. Relaxed ordering is
/// sufficient: every value of the knob yields bit-identical results, so a
/// racing reader can at worst run one kernel on the previous ISA.
std::atomic<Isa>& isaKnob() noexcept {
  static std::atomic<Isa> knob{initialIsa()};
  return knob;
}

}  // namespace

const char* isaName(Isa isa) noexcept {
  switch (isa) {
    case Isa::Scalar: return "scalar";
    case Isa::Neon: return "neon";
    case Isa::Avx2: return "avx2";
    case Isa::Avx512: return "avx512";
  }
  return "unknown";
}

Isa activeIsa() noexcept { return isaKnob().load(std::memory_order_relaxed); }

Isa bestSupportedIsa() noexcept {
  static const Isa best = detectBestIsa();
  return best;
}

bool isaSupported(Isa isa) noexcept { return clampToSupported(isa) == isa; }

Isa setActiveIsa(Isa isa) noexcept {
  return isaKnob().exchange(clampToSupported(isa), std::memory_order_relaxed);
}

namespace detail {

Isa loadActiveIsa() noexcept { return isaKnob().load(std::memory_order_relaxed); }

std::size_t popcountScalarImpl(const std::uint64_t* w, std::size_t n) noexcept {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    count += static_cast<std::size_t>(std::popcount(w[i]));
  }
  return count;
}

#if defined(__x86_64__) || defined(_M_X64)

// --- AVX2 (4 words per vector) ----------------------------------------------
// All loads/stores are unaligned: rows live inside std::vector storage with
// no alignment guarantee beyond operator new's.

__attribute__((target("avx2"))) std::uint64_t andIntoAvx2(
    std::uint64_t* dst, const std::uint64_t* src, std::size_t n) noexcept {
  std::size_t i = 0;
  __m256i alive = _mm256_setzero_si256();
  for (; i + 4 <= n; i += 4) {
    const __m256i r = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), r);
    alive = _mm256_or_si256(alive, r);
  }
  std::uint64_t tail = _mm256_testz_si256(alive, alive) ? 0 : 1;
  for (; i < n; ++i) tail |= (dst[i] &= src[i]);
  return tail;
}

__attribute__((target("avx2"))) void andNotIntoAvx2(std::uint64_t* dst,
                                                    const std::uint64_t* src,
                                                    std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // _mm256_andnot_si256(a, b) = ~a & b.
    const __m256i r = _mm256_andnot_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), r);
  }
  for (; i < n; ++i) dst[i] &= ~src[i];
}

__attribute__((target("avx2"))) void copyAndNotAvx2(std::uint64_t* dst,
                                                    const std::uint64_t* a,
                                                    const std::uint64_t* b,
                                                    std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i r = _mm256_andnot_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), r);
  }
  for (; i < n; ++i) dst[i] = a[i] & ~b[i];
}

__attribute__((target("avx2"))) std::uint64_t copyAndAndNotAvx2(
    std::uint64_t* dst, const std::uint64_t* a, const std::uint64_t* b,
    const std::uint64_t* c, std::size_t n) noexcept {
  std::size_t i = 0;
  __m256i alive = _mm256_setzero_si256();
  for (; i + 4 <= n; i += 4) {
    const __m256i ab = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
    const __m256i r = _mm256_andnot_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + i)), ab);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), r);
    alive = _mm256_or_si256(alive, r);
  }
  std::uint64_t tail = _mm256_testz_si256(alive, alive) ? 0 : 1;
  for (; i < n; ++i) tail |= (dst[i] = a[i] & b[i] & ~c[i]);
  return tail;
}

/// Nibble-LUT popcount of one 256-bit lane accumulated as four u64 sums
/// (Mula's PSHUFB + PSADBW scheme — exact for any input).
__attribute__((target("avx2"))) static inline __m256i popcount256(__m256i v) noexcept {
  const __m256i lut = _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3,
                                       4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3,
                                       3, 4);
  const __m256i low = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_shuffle_epi8(lut, _mm256_and_si256(v, low));
  const __m256i hi = _mm256_shuffle_epi8(
      lut, _mm256_and_si256(_mm256_srli_epi16(v, 4), low));
  return _mm256_sad_epu8(_mm256_add_epi8(lo, hi), _mm256_setzero_si256());
}

__attribute__((target("avx2"))) std::size_t popcountAvx2(const std::uint64_t* w,
                                                         std::size_t n) noexcept {
  std::size_t i = 0;
  __m256i acc = _mm256_setzero_si256();
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_epi64(
        acc, popcount256(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i))));
  }
  std::uint64_t lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::size_t count =
      static_cast<std::size_t>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
  for (; i < n; ++i) count += static_cast<std::size_t>(std::popcount(w[i]));
  return count;
}

__attribute__((target("avx2"))) std::size_t andIntoPopcountAvx2(
    std::uint64_t* dst, const std::uint64_t* src, std::size_t n) noexcept {
  std::size_t i = 0;
  __m256i acc = _mm256_setzero_si256();
  for (; i + 4 <= n; i += 4) {
    const __m256i r = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), r);
    acc = _mm256_add_epi64(acc, popcount256(r));
  }
  std::uint64_t lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::size_t count =
      static_cast<std::size_t>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
  for (; i < n; ++i) {
    dst[i] &= src[i];
    count += static_cast<std::size_t>(std::popcount(dst[i]));
  }
  return count;
}

// --- AVX-512 (8 words per vector; F for the ops, BW for the popcount) -------

// GCC's avx512fintrin.h trips -Wuninitialized on its own
// _mm512_undefined_epi32 inside the unaligned-load intrinsics; the values
// are fully overwritten before use.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

__attribute__((target("avx512f"))) std::uint64_t andIntoAvx512(
    std::uint64_t* dst, const std::uint64_t* src, std::size_t n) noexcept {
  std::size_t i = 0;
  __m512i alive = _mm512_setzero_si512();
  for (; i + 8 <= n; i += 8) {
    const __m512i r = _mm512_and_si512(_mm512_loadu_si512(dst + i),
                                       _mm512_loadu_si512(src + i));
    _mm512_storeu_si512(dst + i, r);
    alive = _mm512_or_si512(alive, r);
  }
  std::uint64_t tail = _mm512_reduce_or_epi64(alive);
  for (; i < n; ++i) tail |= (dst[i] &= src[i]);
  return tail;
}

__attribute__((target("avx512f"))) void andNotIntoAvx512(std::uint64_t* dst,
                                                         const std::uint64_t* src,
                                                         std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i r = _mm512_andnot_si512(_mm512_loadu_si512(src + i),
                                          _mm512_loadu_si512(dst + i));
    _mm512_storeu_si512(dst + i, r);
  }
  for (; i < n; ++i) dst[i] &= ~src[i];
}

__attribute__((target("avx512f"))) void copyAndNotAvx512(std::uint64_t* dst,
                                                         const std::uint64_t* a,
                                                         const std::uint64_t* b,
                                                         std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i r = _mm512_andnot_si512(_mm512_loadu_si512(b + i),
                                          _mm512_loadu_si512(a + i));
    _mm512_storeu_si512(dst + i, r);
  }
  for (; i < n; ++i) dst[i] = a[i] & ~b[i];
}

__attribute__((target("avx512f"))) std::uint64_t copyAndAndNotAvx512(
    std::uint64_t* dst, const std::uint64_t* a, const std::uint64_t* b,
    const std::uint64_t* c, std::size_t n) noexcept {
  std::size_t i = 0;
  __m512i alive = _mm512_setzero_si512();
  for (; i + 8 <= n; i += 8) {
    const __m512i ab =
        _mm512_and_si512(_mm512_loadu_si512(a + i), _mm512_loadu_si512(b + i));
    const __m512i r = _mm512_andnot_si512(_mm512_loadu_si512(c + i), ab);
    _mm512_storeu_si512(dst + i, r);
    alive = _mm512_or_si512(alive, r);
  }
  std::uint64_t tail = _mm512_reduce_or_epi64(alive);
  for (; i < n; ++i) tail |= (dst[i] = a[i] & b[i] & ~c[i]);
  return tail;
}

/// 512-bit nibble-LUT popcount (needs BW for the byte shuffle/psadbw).
__attribute__((target("avx512f,avx512bw"))) static inline __m512i popcount512(
    __m512i v) noexcept {
  const __m512i lut = _mm512_broadcast_i32x4(_mm_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4));
  const __m512i low = _mm512_set1_epi8(0x0f);
  const __m512i lo = _mm512_shuffle_epi8(lut, _mm512_and_si512(v, low));
  const __m512i hi =
      _mm512_shuffle_epi8(lut, _mm512_and_si512(_mm512_srli_epi16(v, 4), low));
  return _mm512_sad_epu8(_mm512_add_epi8(lo, hi), _mm512_setzero_si512());
}

__attribute__((target("avx512f,avx512bw"))) std::size_t popcountAvx512(
    const std::uint64_t* w, std::size_t n) noexcept {
  std::size_t i = 0;
  __m512i acc = _mm512_setzero_si512();
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_add_epi64(acc, popcount512(_mm512_loadu_si512(w + i)));
  }
  std::size_t count = static_cast<std::size_t>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i) count += static_cast<std::size_t>(std::popcount(w[i]));
  return count;
}

__attribute__((target("avx512f,avx512bw"))) std::size_t andIntoPopcountAvx512(
    std::uint64_t* dst, const std::uint64_t* src, std::size_t n) noexcept {
  std::size_t i = 0;
  __m512i acc = _mm512_setzero_si512();
  for (; i + 8 <= n; i += 8) {
    const __m512i r = _mm512_and_si512(_mm512_loadu_si512(dst + i),
                                       _mm512_loadu_si512(src + i));
    _mm512_storeu_si512(dst + i, r);
    acc = _mm512_add_epi64(acc, popcount512(r));
  }
  std::size_t count = static_cast<std::size_t>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i) {
    dst[i] &= src[i];
    count += static_cast<std::size_t>(std::popcount(dst[i]));
  }
  return count;
}

#pragma GCC diagnostic pop

#elif defined(__aarch64__)

// --- NEON (2 words per vector) ----------------------------------------------

std::uint64_t andIntoNeon(std::uint64_t* dst, const std::uint64_t* src,
                          std::size_t n) noexcept {
  std::size_t i = 0;
  uint64x2_t alive = vdupq_n_u64(0);
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t r = vandq_u64(vld1q_u64(dst + i), vld1q_u64(src + i));
    vst1q_u64(dst + i, r);
    alive = vorrq_u64(alive, r);
  }
  std::uint64_t tail = vgetq_lane_u64(alive, 0) | vgetq_lane_u64(alive, 1);
  for (; i < n; ++i) tail |= (dst[i] &= src[i]);
  return tail;
}

void andNotIntoNeon(std::uint64_t* dst, const std::uint64_t* src,
                    std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vbicq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  }
  for (; i < n; ++i) dst[i] &= ~src[i];
}

void copyAndNotNeon(std::uint64_t* dst, const std::uint64_t* a,
                    const std::uint64_t* b, std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vbicq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
  }
  for (; i < n; ++i) dst[i] = a[i] & ~b[i];
}

std::uint64_t copyAndAndNotNeon(std::uint64_t* dst, const std::uint64_t* a,
                                const std::uint64_t* b, const std::uint64_t* c,
                                std::size_t n) noexcept {
  std::size_t i = 0;
  uint64x2_t alive = vdupq_n_u64(0);
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t r = vbicq_u64(
        vandq_u64(vld1q_u64(a + i), vld1q_u64(b + i)), vld1q_u64(c + i));
    vst1q_u64(dst + i, r);
    alive = vorrq_u64(alive, r);
  }
  std::uint64_t tail = vgetq_lane_u64(alive, 0) | vgetq_lane_u64(alive, 1);
  for (; i < n; ++i) tail |= (dst[i] = a[i] & b[i] & ~c[i]);
  return tail;
}

std::size_t popcountNeon(const std::uint64_t* w, std::size_t n) noexcept {
  std::size_t i = 0;
  std::uint64_t count = 0;
  for (; i + 2 <= n; i += 2) {
    const uint8x16_t bytes = vcntq_u8(vreinterpretq_u8_u64(vld1q_u64(w + i)));
    count += vaddvq_u8(bytes);
  }
  for (; i < n; ++i) count += static_cast<std::uint64_t>(std::popcount(w[i]));
  return static_cast<std::size_t>(count);
}

std::size_t andIntoPopcountNeon(std::uint64_t* dst, const std::uint64_t* src,
                                std::size_t n) noexcept {
  std::size_t i = 0;
  std::uint64_t count = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t r = vandq_u64(vld1q_u64(dst + i), vld1q_u64(src + i));
    vst1q_u64(dst + i, r);
    count += vaddvq_u8(vcntq_u8(vreinterpretq_u8_u64(r)));
  }
  for (; i < n; ++i) {
    dst[i] &= src[i];
    count += static_cast<std::uint64_t>(std::popcount(dst[i]));
  }
  return static_cast<std::size_t>(count);
}

#endif

}  // namespace detail

}  // namespace netembed::util::simd
