#pragma once
// Deterministic, site-keyed fault injection.
//
// NETEMBED's robustness story (retrying tickets, graceful degradation) is
// only trustworthy if the failure paths are *testable*: this registry plants
// named probe sites at the hot seams — thread-pool dispatch, stage-1 plan
// build/patch, scheduler dequeue, the ticket solution consumer, the
// per-visit engine poll — and fires faults on a seeded, reproducible
// schedule. Inert by default: a disabled injector costs each probe one
// relaxed atomic load and nothing else, so the probes stay compiled into
// production paths.
//
// Determinism: the decision for the N-th arrival at a site is a pure
// function of (seed, site name, N). Two runs with the same seed, the same
// armed specs and the same per-site arrival counts fire the same faults —
// which is exactly what a chaos test replays.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace netembed::util {

namespace detail {
/// The global probe gate. Header-visible so FaultInjector::enabled() inlines
/// to a single relaxed load — the per-visited-node engine probe cannot
/// afford an out-of-line call.
extern std::atomic<bool> gFaultsEnabled;
}  // namespace detail

/// What an armed probe site throws. Deliberately a plain std::runtime_error
/// subtype: every layer that must survive "some component failed" (the
/// shared plan builder's transient-failure path, ticket resolution, retry
/// classification) already handles that shape.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(std::string site)
      : std::runtime_error("injected fault at site '" + site + "'"),
        site_(std::move(site)) {}
  [[nodiscard]] const std::string& site() const noexcept { return site_; }

 private:
  std::string site_;
};

/// Firing schedule for one armed site.
struct FaultSpec {
  /// Chance each arrival (past skipFirst) fires, decided deterministically
  /// from (seed, site, arrival index). 1.0 = every arrival.
  double probability = 1.0;
  /// Arrivals at the site that never fire, before the schedule starts.
  /// {skipFirst: N, maxFires: 1} crashes exactly the (N+1)-th arrival —
  /// the deterministic "mid-search crash on attempt 1" recipe.
  std::uint64_t skipFirst = 0;
  /// Total fires after which the site goes quiet. 0 = unlimited.
  std::uint64_t maxFires = 0;
  /// Sleep served on every fire, before any throw: latency-spike and
  /// slow-consumer simulation.
  std::chrono::milliseconds delay{0};
  /// Whether a throwing probe (faultPoint) actually throws on fire. False
  /// turns a throw-site into a pure delay fault.
  bool throws = true;
};

/// The process-wide registry. Typical test shape:
///
///   auto& fi = util::FaultInjector::instance();
///   fi.enable(seed);
///   fi.arm(util::faultsite::kEngineStep, {.skipFirst = 100, .maxFires = 1});
///   ... run the workload ...
///   fi.disable();  // clears every site and counter
class FaultInjector {
 public:
  [[nodiscard]] static FaultInjector& instance();

  /// The zero-cost gate every probe checks first: one relaxed atomic load,
  /// inlined at the call site.
  [[nodiscard]] static bool enabled() noexcept {
    return detail::gFaultsEnabled.load(std::memory_order_relaxed);
  }

  /// Turn injection on under `seed`. Sites armed earlier stay armed; their
  /// arrival/fire counters reset so a schedule replays from the start.
  void enable(std::uint64_t seed);
  /// Turn injection off and clear every armed site and counter.
  void disable();

  /// Arm (or re-arm, resetting its counters) one probe site.
  void arm(const char* site, FaultSpec spec = {});

  /// Probe side: count one arrival at `site` and decide whether it fires.
  /// Serves spec.delay on a fire. Unarmed sites never fire (and are not
  /// counted). `specOut`, when given, receives the armed spec on a fire.
  [[nodiscard]] bool shouldFire(const char* site, FaultSpec* specOut = nullptr);

  /// Arrivals counted at a site since it was (re-)armed.
  [[nodiscard]] std::uint64_t arrivals(const char* site) const;
  /// Fires served at a site since it was (re-)armed.
  [[nodiscard]] std::uint64_t fires(const char* site) const;

 private:
  FaultInjector() = default;
  struct Impl;
  [[nodiscard]] Impl& impl() const;
};

/// Probe helpers (all no-ops while the injector is disabled or the site is
/// unarmed; callers still guard with FaultInjector::enabled() to keep the
/// hot path at a single relaxed load):

/// Decision probe: true when the site fires (after serving its delay).
[[nodiscard]] bool faultFires(const char* site);
/// Throwing probe: serve the delay, then throw InjectedFault on a fire
/// (unless the spec was armed with throws = false).
void faultPoint(const char* site);
/// Delay-only probe: serve the delay on a fire, never throw.
void faultDelay(const char* site);

/// The probe-site catalogue (see README "Fault tolerance" for what each
/// simulates and which degradation answers it).
namespace faultsite {
/// ThreadPool worker checks before dequeuing: a fire makes the worker exit
/// (worker-death simulation; the last one drains the queue first).
inline constexpr const char* kPoolWorkerDeath = "pool.worker_death";
/// ThreadPool::submit: a fire throws (task-spawn failure simulation).
inline constexpr const char* kPoolSubmit = "pool.submit";
/// FilterPlan::build: allocation-failure simulation for stage-1 builds.
inline constexpr const char* kPlanBuild = "plan.build";
/// FilterPlan::patch / patchOwned: same, for the incremental path.
inline constexpr const char* kPlanPatch = "plan.patch";
/// Per-shard stage of a sharded FilterMatrix build: a fire fails one
/// shard's build task (partition-local allocation/worker failure
/// simulation; the whole build surfaces it like any stage-1 failure).
inline constexpr const char* kShardBuild = "plan.shard_build";
/// The filtered engines' build-cancellation predicate: a fire reports
/// "cancelled" without any real stop (spurious cancellation).
inline constexpr const char* kPlanCancel = "plan.spurious_cancel";
/// QosScheduler worker between dequeue and dispatch: delay-only
/// (clock-skew / scheduling latency spike).
inline constexpr const char* kQosDequeue = "qos.dequeue";
/// The buffered-onSolution consumer, just before the user sink: slow
/// (delay) and/or throwing consumer.
inline constexpr const char* kTicketConsumer = "ticket.consumer";
/// SearchContext::shouldStop — the one poll every engine runs per visited
/// node: mid-search crash.
inline constexpr const char* kEngineStep = "engine.step";
}  // namespace faultsite

}  // namespace netembed::util
