#pragma once
// Streaming and batch statistics used by the benchmark harnesses to report
// the same mean +/- confidence-interval series the paper plots.

#include <cstddef>
#include <vector>

namespace netembed::util {

/// Welford's online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  // sample variance (n-1)
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

  /// Half-width of the 95% confidence interval for the mean
  /// (Student-t critical values for small n, 1.96 asymptotically).
  [[nodiscard]] double ci95HalfWidth() const noexcept;

  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// p in [0,100]; linear interpolation between order statistics.
[[nodiscard]] double percentile(std::vector<double> values, double p);

/// Nearest-rank quantile, q in [0,1]: sorts and returns the element at index
/// ceil(q * (n-1)). Unlike percentile() this never interpolates — the result
/// is always an observed sample — and unlike a floored rank it never
/// under-reports the tail (p99 of 1024 samples reads index 1013, not 1012;
/// p50 of a 2-sample set reads the larger, not the minimum). Returns 0 for an
/// empty sample. This is the definition the QosScheduler admission-latency
/// stats report.
[[nodiscard]] double quantileNearestRank(std::vector<double> values, double q);

[[nodiscard]] double mean(const std::vector<double>& values);
[[nodiscard]] double median(std::vector<double> values);

}  // namespace netembed::util
