#include "util/fault.hpp"

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <unordered_map>

namespace netembed::util {

namespace detail {
std::atomic<bool> gFaultsEnabled{false};
}  // namespace detail

namespace {

/// splitmix64: the decision hash. Cheap, stateless, and good enough that
/// probability thresholds behave like independent coin flips per arrival.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hashSite(const char* site) noexcept {
  // FNV-1a over the site name; the name is the stable identity (pointer
  // values would not replay across builds).
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char* p = site; *p != '\0'; ++p) {
    h = (h ^ static_cast<unsigned char>(*p)) * 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

struct FaultInjector::Impl {
  struct SiteState {
    FaultSpec spec;
    std::atomic<std::uint64_t> arrivals{0};
    std::atomic<std::uint64_t> fires{0};
  };

  /// shared_mutex: probes take the shared side (lookups only — SiteState
  /// counters are atomics); arm/disable take the exclusive side.
  mutable std::shared_mutex mutex;
  std::unordered_map<std::string, std::unique_ptr<SiteState>> sites;
  std::uint64_t seed = 0;
};

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

FaultInjector::Impl& FaultInjector::impl() const {
  static Impl impl;
  return impl;
}

void FaultInjector::enable(std::uint64_t seed) {
  Impl& im = impl();
  std::unique_lock lock(im.mutex);
  im.seed = seed;
  for (auto& [name, state] : im.sites) {
    (void)name;
    state->arrivals.store(0, std::memory_order_relaxed);
    state->fires.store(0, std::memory_order_relaxed);
  }
  detail::gFaultsEnabled.store(true, std::memory_order_release);
}

void FaultInjector::disable() {
  Impl& im = impl();
  detail::gFaultsEnabled.store(false, std::memory_order_release);
  std::unique_lock lock(im.mutex);
  im.sites.clear();
}

void FaultInjector::arm(const char* site, FaultSpec spec) {
  Impl& im = impl();
  std::unique_lock lock(im.mutex);
  auto state = std::make_unique<Impl::SiteState>();
  state->spec = spec;
  im.sites[site] = std::move(state);
}

bool FaultInjector::shouldFire(const char* site, FaultSpec* specOut) {
  if (!enabled()) return false;
  Impl& im = impl();
  FaultSpec spec;
  std::chrono::milliseconds delay{0};
  {
    std::shared_lock lock(im.mutex);
    const auto it = im.sites.find(site);
    if (it == im.sites.end()) return false;
    Impl::SiteState& state = *it->second;
    spec = state.spec;
    const std::uint64_t index =
        state.arrivals.fetch_add(1, std::memory_order_relaxed);
    if (index < spec.skipFirst) return false;
    if (spec.probability < 1.0) {
      // Deterministic per-(seed, site, arrival) coin flip in [0, 1).
      const std::uint64_t h = mix64(im.seed ^ hashSite(site) ^
                                    mix64(index + 1));
      const double u =
          static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
      if (u >= spec.probability) return false;
    }
    if (spec.maxFires != 0) {
      // Claim one of the remaining fires; losers of the race stay quiet.
      std::uint64_t fired = state.fires.load(std::memory_order_relaxed);
      for (;;) {
        if (fired >= spec.maxFires) return false;
        if (state.fires.compare_exchange_weak(fired, fired + 1,
                                              std::memory_order_acq_rel)) {
          break;
        }
      }
    } else {
      state.fires.fetch_add(1, std::memory_order_relaxed);
    }
    delay = spec.delay;
  }
  // The delay is served outside the registry lock: a slow fault must not
  // serialize unrelated probes.
  if (delay.count() > 0) std::this_thread::sleep_for(delay);
  if (specOut) *specOut = spec;
  return true;
}

std::uint64_t FaultInjector::arrivals(const char* site) const {
  Impl& im = impl();
  std::shared_lock lock(im.mutex);
  const auto it = im.sites.find(site);
  return it == im.sites.end()
             ? 0
             : it->second->arrivals.load(std::memory_order_relaxed);
}

std::uint64_t FaultInjector::fires(const char* site) const {
  Impl& im = impl();
  std::shared_lock lock(im.mutex);
  const auto it = im.sites.find(site);
  return it == im.sites.end()
             ? 0
             : it->second->fires.load(std::memory_order_relaxed);
}

bool faultFires(const char* site) {
  return FaultInjector::instance().shouldFire(site);
}

void faultPoint(const char* site) {
  FaultSpec spec;
  if (!FaultInjector::instance().shouldFire(site, &spec)) return;
  if (spec.throws) throw InjectedFault(site);
}

void faultDelay(const char* site) {
  (void)FaultInjector::instance().shouldFire(site);
}

}  // namespace netembed::util
