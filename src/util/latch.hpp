#pragma once
// Countdown latch for submit-and-wait fan-out on a ThreadPool.

#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace netembed::util {

/// Counts outstanding tasks for one fan-out. Usage: add() before each
/// submission (revert() if the submission throws), the task calls done() as
/// its last action, the owner wait()s before the latch leaves scope. Unlike
/// std::latch the count grows dynamically and a failed submission can be
/// un-accounted.
class CompletionLatch {
 public:
  void add() {
    std::lock_guard lock(mutex_);
    ++count_;
  }

  /// Un-account a task whose submission threw (it will never run).
  void revert() {
    std::lock_guard lock(mutex_);
    --count_;
  }

  void done() {
    // Decrement-and-notify under the mutex: the waiter must not be able to
    // observe count == 0 (and destroy this latch) while the calling task is
    // still between the decrement and the notify.
    std::lock_guard lock(mutex_);
    if (--count_ == 0) cv_.notify_all();
  }

  /// Block until every accounted task has called done().
  void wait() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return count_ == 0; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t count_ = 0;
};

}  // namespace netembed::util
