#include "graphml/graphml.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "xml/xml.hpp"

namespace netembed::graphml {

using graph::AttrId;
using graph::AttrType;
using graph::AttrValue;
using graph::Graph;

namespace {

std::string_view typeString(AttrType t) {
  switch (t) {
    case AttrType::Bool: return "boolean";
    case AttrType::Int: return "long";
    case AttrType::Double: return "double";
    case AttrType::String: return "string";
    default: return "string";
  }
}

AttrType typeFromString(std::string_view s) {
  if (s == "boolean") return AttrType::Bool;
  if (s == "int" || s == "long") return AttrType::Int;
  if (s == "float" || s == "double") return AttrType::Double;
  if (s == "string") return AttrType::String;
  throw std::runtime_error("GraphML: unknown attr.type '" + std::string(s) + "'");
}

/// Scope -> attribute name -> type, merging across all elements.
struct KeyTable {
  std::map<std::pair<std::string, AttrId>, AttrType> types;

  void observe(const std::string& scope, const graph::AttrMap& attrs) {
    for (const auto& [id, value] : attrs) {
      if (!value.isDefined()) continue;
      const auto key = std::make_pair(scope, id);
      const auto it = types.find(key);
      if (it == types.end()) {
        types.emplace(key, value.type());
      } else if (it->second != value.type()) {
        it->second = AttrType::String;  // conflicting types -> promote
      }
    }
  }
};

void appendDataElements(xml::Element& parent, const std::string& scope,
                        const graph::AttrMap& attrs) {
  for (const auto& [id, value] : attrs) {
    if (!value.isDefined()) continue;
    xml::Element data;
    data.name = "data";
    data.attributes.emplace_back("key", scope + "_" + graph::attrName(id));
    data.text = value.toString();
    parent.children.push_back(std::move(data));
  }
}

}  // namespace

std::string write(const Graph& g) {
  KeyTable keys;
  keys.observe("graph", g.attrs());
  for (graph::NodeId n = 0; n < g.nodeCount(); ++n) keys.observe("node", g.nodeAttrs(n));
  for (graph::EdgeId e = 0; e < g.edgeCount(); ++e) keys.observe("edge", g.edgeAttrs(e));

  xml::Element root;
  root.name = "graphml";
  root.attributes.emplace_back("xmlns", "http://graphml.graphdrawing.org/xmlns");

  for (const auto& [scopeAndId, type] : keys.types) {
    const auto& [scope, id] = scopeAndId;
    xml::Element key;
    key.name = "key";
    key.attributes.emplace_back("id", scope + "_" + graph::attrName(id));
    key.attributes.emplace_back("for", scope);
    key.attributes.emplace_back("attr.name", graph::attrName(id));
    key.attributes.emplace_back("attr.type", std::string(typeString(type)));
    root.children.push_back(std::move(key));
  }

  xml::Element graphEl;
  graphEl.name = "graph";
  graphEl.attributes.emplace_back("id", "G");
  graphEl.attributes.emplace_back("edgedefault", g.directed() ? "directed" : "undirected");
  appendDataElements(graphEl, "graph", g.attrs());

  for (graph::NodeId n = 0; n < g.nodeCount(); ++n) {
    xml::Element node;
    node.name = "node";
    node.attributes.emplace_back("id", g.nodeName(n));
    appendDataElements(node, "node", g.nodeAttrs(n));
    graphEl.children.push_back(std::move(node));
  }
  for (graph::EdgeId e = 0; e < g.edgeCount(); ++e) {
    xml::Element edge;
    edge.name = "edge";
    edge.attributes.emplace_back("source", g.nodeName(g.edgeSource(e)));
    edge.attributes.emplace_back("target", g.nodeName(g.edgeTarget(e)));
    appendDataElements(edge, "edge", g.edgeAttrs(e));
    graphEl.children.push_back(std::move(edge));
  }
  root.children.push_back(std::move(graphEl));
  return xml::serialize(root);
}

void write(const Graph& g, std::ostream& out) { out << write(g); }

void writeFile(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("GraphML: cannot open '" + path + "' for writing");
  write(g, out);
}

Graph read(std::string_view text) {
  const xml::Element root = xml::parse(text);
  if (root.name != "graphml") {
    throw std::runtime_error("GraphML: root element is <" + root.name +
                             ">, expected <graphml>");
  }

  struct KeyInfo {
    std::string scope;  // "node", "edge", "graph", "all"
    std::string attrName;
    AttrType type = AttrType::String;
    std::string defaultValue;
    bool hasDefault = false;
  };
  std::map<std::string, KeyInfo> keys;
  for (const xml::Element* key : root.childrenNamed("key")) {
    KeyInfo info;
    info.scope = key->attr("for") ? *key->attr("for") : "all";
    const std::string* name = key->attr("attr.name");
    info.attrName = name ? *name : key->requiredAttr("id");
    if (const std::string* type = key->attr("attr.type")) {
      info.type = typeFromString(*type);
    }
    if (const xml::Element* def = key->child("default")) {
      info.hasDefault = true;
      info.defaultValue = def->text;
    }
    keys.emplace(key->requiredAttr("id"), std::move(info));
  }

  const xml::Element* graphEl = root.child("graph");
  if (!graphEl) throw std::runtime_error("GraphML: missing <graph> element");
  const std::string* edgeDefault = graphEl->attr("edgedefault");
  const bool directed = edgeDefault && *edgeDefault == "directed";
  Graph g(directed);

  auto applyData = [&](const xml::Element& owner, graph::AttrMap& attrs,
                       const std::string& scope) {
    for (const xml::Element* data : owner.childrenNamed("data")) {
      const std::string& keyId = data->requiredAttr("key");
      const auto it = keys.find(keyId);
      if (it == keys.end()) {
        throw std::runtime_error("GraphML: <data> references undeclared key '" + keyId +
                                 "'");
      }
      const KeyInfo& info = it->second;
      if (info.scope != "all" && info.scope != scope) {
        throw std::runtime_error("GraphML: key '" + keyId + "' is for '" + info.scope +
                                 "', used on a " + scope);
      }
      attrs.set(info.attrName, AttrValue::parseAs(info.type, data->text));
    }
  };

  auto applyDefaults = [&](graph::AttrMap& attrs, const std::string& scope) {
    for (const auto& [id, info] : keys) {
      (void)id;
      if (!info.hasDefault) continue;
      if (info.scope != "all" && info.scope != scope) continue;
      if (!attrs.has(info.attrName)) {
        attrs.set(info.attrName, AttrValue::parseAs(info.type, info.defaultValue));
      }
    }
  };

  applyData(*graphEl, g.attrs(), "graph");

  for (const xml::Element* node : graphEl->childrenNamed("node")) {
    const graph::NodeId id = g.addNode(node->requiredAttr("id"));
    applyData(*node, g.nodeAttrs(id), "node");
    applyDefaults(g.nodeAttrs(id), "node");
  }
  for (const xml::Element* edge : graphEl->childrenNamed("edge")) {
    const auto src = g.findNode(edge->requiredAttr("source"));
    const auto dst = g.findNode(edge->requiredAttr("target"));
    if (!src || !dst) {
      throw std::runtime_error("GraphML: edge references undeclared node");
    }
    const graph::EdgeId id = g.addEdge(*src, *dst);
    applyData(*edge, g.edgeAttrs(id), "edge");
    applyDefaults(g.edgeAttrs(id), "edge");
  }
  return g;
}

Graph readFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("GraphML: cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return read(buffer.str());
}

}  // namespace netembed::graphml
