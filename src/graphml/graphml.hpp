#pragma once
// GraphML reader/writer (paper §VI-A): the "standard network representation"
// NETEMBED adopts so hosting and query networks carry arbitrary typed
// attributes for nodes and links.
//
// Supported subset: one <graph> per document, <key> declarations with
// attr.name / attr.type (boolean, int, long, float, double, string) and
// optional <default>, <data> on graph/node/edge elements. Nested graphs and
// ports are not supported (and not used by any NETEMBED workload).

#include <iosfwd>
#include <string>
#include <string_view>

#include "graph/graph.hpp"

namespace netembed::graphml {

/// Serialize to GraphML. Keys are synthesized from the attributes actually
/// present; if one attribute name is used with conflicting types, values are
/// promoted to string.
[[nodiscard]] std::string write(const graph::Graph& g);
void write(const graph::Graph& g, std::ostream& out);
void writeFile(const graph::Graph& g, const std::string& path);

/// Parse a GraphML document. Node ids become node names. Throws
/// xml::ParseError / std::runtime_error on malformed input.
[[nodiscard]] graph::Graph read(std::string_view text);
[[nodiscard]] graph::Graph readFile(const std::string& path);

}  // namespace netembed::graphml
