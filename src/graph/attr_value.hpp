#pragma once
// Typed attribute values attached to graph nodes and edges.
//
// The paper's networks carry both numeric metrics (delay, bandwidth, CPU
// speed) and categorical classes ("node n1 is linux-2.6"); GraphML declares
// them as typed <key>s. AttrValue is the closed sum of those types.

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

namespace netembed::graph {

enum class AttrType : std::uint8_t { Undefined, Bool, Int, Double, String };

[[nodiscard]] std::string_view attrTypeName(AttrType t) noexcept;

/// A value of one of the GraphML-representable attribute types. The default
/// state is Undefined (attribute absent); expression evaluation propagates
/// undefined rather than throwing (see expr::Value).
class AttrValue {
 public:
  AttrValue() noexcept = default;
  AttrValue(bool b) noexcept : v_(b) {}                       // NOLINT(google-explicit-constructor)
  AttrValue(std::int64_t i) noexcept : v_(i) {}               // NOLINT
  AttrValue(int i) noexcept : v_(static_cast<std::int64_t>(i)) {}  // NOLINT
  AttrValue(double d) noexcept : v_(d) {}                     // NOLINT
  AttrValue(std::string s) noexcept : v_(std::move(s)) {}     // NOLINT
  AttrValue(const char* s) : v_(std::string(s)) {}            // NOLINT

  [[nodiscard]] AttrType type() const noexcept {
    return static_cast<AttrType>(v_.index());
  }
  [[nodiscard]] bool isDefined() const noexcept { return type() != AttrType::Undefined; }
  [[nodiscard]] bool isNumeric() const noexcept {
    return type() == AttrType::Int || type() == AttrType::Double;
  }

  /// Numeric view (Int widens to double). Requires isNumeric() or Bool.
  [[nodiscard]] double asDouble() const;
  [[nodiscard]] std::int64_t asInt() const;
  [[nodiscard]] bool asBool() const;
  [[nodiscard]] const std::string& asString() const;

  /// Render for GraphML / debugging ("3.5", "true", "linux-2.6").
  [[nodiscard]] std::string toString() const;

  /// Parse `text` as the given type (used by the GraphML reader).
  [[nodiscard]] static AttrValue parseAs(AttrType type, std::string_view text);

  friend bool operator==(const AttrValue& a, const AttrValue& b);
  friend bool operator!=(const AttrValue& a, const AttrValue& b) { return !(a == b); }

 private:
  std::variant<std::monostate, bool, std::int64_t, double, std::string> v_;
};

}  // namespace netembed::graph
