#include "graph/attr_value.hpp"

#include <charconv>
#include <cstdio>
#include <stdexcept>

namespace netembed::graph {

std::string_view attrTypeName(AttrType t) noexcept {
  switch (t) {
    case AttrType::Undefined: return "undefined";
    case AttrType::Bool: return "boolean";
    case AttrType::Int: return "long";
    case AttrType::Double: return "double";
    case AttrType::String: return "string";
  }
  return "?";
}

double AttrValue::asDouble() const {
  switch (type()) {
    case AttrType::Int: return static_cast<double>(std::get<std::int64_t>(v_));
    case AttrType::Double: return std::get<double>(v_);
    case AttrType::Bool: return std::get<bool>(v_) ? 1.0 : 0.0;
    default:
      throw std::runtime_error("AttrValue: not numeric (" +
                               std::string(attrTypeName(type())) + ")");
  }
}

std::int64_t AttrValue::asInt() const {
  switch (type()) {
    case AttrType::Int: return std::get<std::int64_t>(v_);
    case AttrType::Double: return static_cast<std::int64_t>(std::get<double>(v_));
    case AttrType::Bool: return std::get<bool>(v_) ? 1 : 0;
    default:
      throw std::runtime_error("AttrValue: not numeric (" +
                               std::string(attrTypeName(type())) + ")");
  }
}

bool AttrValue::asBool() const {
  if (type() != AttrType::Bool) throw std::runtime_error("AttrValue: not a boolean");
  return std::get<bool>(v_);
}

const std::string& AttrValue::asString() const {
  if (type() != AttrType::String) throw std::runtime_error("AttrValue: not a string");
  return std::get<std::string>(v_);
}

std::string AttrValue::toString() const {
  switch (type()) {
    case AttrType::Undefined: return "";
    case AttrType::Bool: return std::get<bool>(v_) ? "true" : "false";
    case AttrType::Int: return std::to_string(std::get<std::int64_t>(v_));
    case AttrType::Double: {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.17g", std::get<double>(v_));
      return buf;
    }
    case AttrType::String: return std::get<std::string>(v_);
  }
  return "";
}

AttrValue AttrValue::parseAs(AttrType type, std::string_view text) {
  switch (type) {
    case AttrType::Undefined: return {};
    case AttrType::Bool: {
      if (text == "true" || text == "1") return AttrValue(true);
      if (text == "false" || text == "0") return AttrValue(false);
      throw std::runtime_error("AttrValue: bad boolean '" + std::string(text) + "'");
    }
    case AttrType::Int: {
      std::int64_t out = 0;
      const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), out);
      if (ec != std::errc{} || ptr != text.data() + text.size()) {
        throw std::runtime_error("AttrValue: bad integer '" + std::string(text) + "'");
      }
      return AttrValue(out);
    }
    case AttrType::Double: {
      // std::from_chars for double is unreliable across libstdc++ versions;
      // strtod on a NUL-terminated copy is portable and this is not hot code.
      const std::string copy(text);
      char* end = nullptr;
      const double out = std::strtod(copy.c_str(), &end);
      if (end != copy.c_str() + copy.size() || copy.empty()) {
        throw std::runtime_error("AttrValue: bad double '" + copy + "'");
      }
      return AttrValue(out);
    }
    case AttrType::String: return AttrValue(std::string(text));
  }
  throw std::runtime_error("AttrValue: unknown type");
}

bool operator==(const AttrValue& a, const AttrValue& b) {
  // Numeric values compare across Int/Double representations.
  if (a.isNumeric() && b.isNumeric()) return a.asDouble() == b.asDouble();
  return a.v_ == b.v_;
}

}  // namespace netembed::graph
