#pragma once
// The attributed graph that represents both hosting and query networks.
//
// Design targets (driven by the embedding engines):
//   * O(1) amortized edge existence / lookup via a hash index,
//   * cache-friendly adjacency iteration (contiguous Neighbor vectors),
//   * directed and undirected graphs behind one interface; for undirected
//     graphs the adjacency is symmetric and findEdge is orientation-blind.
// Self-loops and parallel edges are rejected: a mapping is injective on
// nodes, so neither can ever participate in a feasible embedding.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/attr_map.hpp"

namespace netembed::graph {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
inline constexpr EdgeId kInvalidEdge = static_cast<EdgeId>(-1);

/// One adjacency entry: the neighbouring node and the connecting edge.
struct Neighbor {
  NodeId node;
  EdgeId edge;
  friend bool operator==(const Neighbor&, const Neighbor&) = default;
};

class Graph {
 public:
  explicit Graph(bool directed = false) : directed_(directed) {}

  [[nodiscard]] bool directed() const noexcept { return directed_; }
  [[nodiscard]] std::size_t nodeCount() const noexcept { return nodeAttrs_.size(); }
  [[nodiscard]] std::size_t edgeCount() const noexcept { return edges_.size(); }

  /// Adds a node; an empty name is replaced by "n<id>". Names must be unique.
  NodeId addNode(std::string name = {});

  /// Adds an edge u->v (directed) or {u,v} (undirected). Throws on self-loop,
  /// duplicate edge, or out-of-range endpoints.
  EdgeId addEdge(NodeId u, NodeId v);

  [[nodiscard]] NodeId edgeSource(EdgeId e) const { return edges_.at(e).src; }
  [[nodiscard]] NodeId edgeTarget(EdgeId e) const { return edges_.at(e).dst; }

  /// The endpoint of `e` that is not `n` (n must be an endpoint).
  [[nodiscard]] NodeId edgeOther(EdgeId e, NodeId n) const;

  [[nodiscard]] AttrMap& nodeAttrs(NodeId n) { return nodeAttrs_.at(n); }
  [[nodiscard]] const AttrMap& nodeAttrs(NodeId n) const { return nodeAttrs_.at(n); }
  [[nodiscard]] AttrMap& edgeAttrs(EdgeId e) { return edgeAttrs_.at(e); }
  [[nodiscard]] const AttrMap& edgeAttrs(EdgeId e) const { return edgeAttrs_.at(e); }

  /// Out-adjacency for directed graphs, full adjacency for undirected.
  [[nodiscard]] std::span<const Neighbor> neighbors(NodeId n) const {
    return out_.at(n);
  }
  /// In-adjacency; only meaningful for directed graphs (empty otherwise).
  [[nodiscard]] std::span<const Neighbor> inNeighbors(NodeId n) const {
    return directed_ ? std::span<const Neighbor>(in_.at(n)) : std::span<const Neighbor>();
  }

  [[nodiscard]] std::size_t degree(NodeId n) const {
    return out_.at(n).size() + (directed_ ? in_.at(n).size() : 0);
  }
  [[nodiscard]] std::size_t outDegree(NodeId n) const { return out_.at(n).size(); }
  [[nodiscard]] std::size_t inDegree(NodeId n) const {
    return directed_ ? in_.at(n).size() : out_.at(n).size();
  }

  /// Directed: edge u->v. Undirected: edge {u,v} in either orientation.
  [[nodiscard]] std::optional<EdgeId> findEdge(NodeId u, NodeId v) const;
  [[nodiscard]] bool hasEdge(NodeId u, NodeId v) const { return findEdge(u, v).has_value(); }

  [[nodiscard]] const std::string& nodeName(NodeId n) const { return names_.at(n); }
  [[nodiscard]] std::optional<NodeId> findNode(std::string_view name) const;

  /// Graph-level attributes (e.g. generator provenance).
  [[nodiscard]] AttrMap& attrs() noexcept { return graphAttrs_; }
  [[nodiscard]] const AttrMap& attrs() const noexcept { return graphAttrs_; }

  /// 2|E| / (|V|(|V|-1)) for directed, 2|E| / (|V|(|V|-1)) undirected counts
  /// each unordered pair once; 0 for |V| < 2.
  [[nodiscard]] double density() const noexcept;

 private:
  struct EdgeRec {
    NodeId src;
    NodeId dst;
  };

  [[nodiscard]] std::uint64_t edgeKey(NodeId u, NodeId v) const noexcept;
  void checkNode(NodeId n) const;

  bool directed_;
  std::vector<AttrMap> nodeAttrs_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, NodeId> byName_;
  std::vector<EdgeRec> edges_;
  std::vector<AttrMap> edgeAttrs_;
  std::vector<std::vector<Neighbor>> out_;
  std::vector<std::vector<Neighbor>> in_;  // directed only
  std::unordered_map<std::uint64_t, EdgeId> edgeIndex_;
  AttrMap graphAttrs_;
};

}  // namespace netembed::graph
