#pragma once
// The attributed graph that represents both hosting and query networks.
//
// Design targets (driven by the embedding engines):
//   * O(1) amortized edge existence / lookup via a hash index,
//   * cache-friendly adjacency iteration (contiguous Neighbor vectors),
//   * directed and undirected graphs behind one interface; for undirected
//     graphs the adjacency is symmetric and findEdge is orientation-blind.
// Self-loops and parallel edges are rejected: a mapping is injective on
// nodes, so neither can ever participate in a feasible embedding.
//
// Copies share structure. The topology (edge records, adjacency, the edge
// and name hash indexes) lives behind one shared immutable block, and the
// node/edge attribute maps live in copy-on-write chunks (util::CowChunks):
// copying a Graph is O(elements / 64) pointer copies, and mutating an
// attribute on one copy clones only that element's 64-entry chunk. This is
// what makes the service's per-mutation host snapshots cheap — the
// high-frequency-monitoring case the paper's "service" framing implies.
// The usual container rule applies: concurrent reads of any copies are
// fine; mutating one *object* while another thread copies or reads that
// same object needs external synchronization.

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/attr_map.hpp"
#include "util/cow.hpp"

namespace netembed::graph {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
inline constexpr EdgeId kInvalidEdge = static_cast<EdgeId>(-1);

/// One adjacency entry: the neighbouring node and the connecting edge.
struct Neighbor {
  NodeId node;
  EdgeId edge;
  friend bool operator==(const Neighbor&, const Neighbor&) = default;
};

class Graph {
 public:
  explicit Graph(bool directed = false);

  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;
  // A moved-from Graph stays a valid empty graph (as it was before the
  // structural-sharing refactor): the default move would null topo_ and
  // leave every structural accessor dereferencing nothing. The moved-from
  // side receives a process-wide immutable empty topology block — never
  // allocated in the move, never mutated through (topoMut() sees it shared
  // and clones first).
  Graph(Graph&& other) noexcept;
  Graph& operator=(Graph&& other) noexcept;

  [[nodiscard]] bool directed() const noexcept { return directed_; }
  [[nodiscard]] std::size_t nodeCount() const noexcept { return nodeAttrs_.size(); }
  [[nodiscard]] std::size_t edgeCount() const noexcept { return topo_->edges.size(); }

  /// Adds a node; an empty name is replaced by "n<id>". Names must be unique.
  NodeId addNode(std::string name = {});

  /// Adds an edge u->v (directed) or {u,v} (undirected). Throws on self-loop,
  /// duplicate edge, or out-of-range endpoints.
  EdgeId addEdge(NodeId u, NodeId v);

  [[nodiscard]] NodeId edgeSource(EdgeId e) const { return edgeRec(e).src; }
  [[nodiscard]] NodeId edgeTarget(EdgeId e) const { return edgeRec(e).dst; }

  /// The endpoint of `e` that is not `n` (n must be an endpoint).
  [[nodiscard]] NodeId edgeOther(EdgeId e, NodeId n) const;

  /// Mutable attribute access copies-on-write: the element's chunk is cloned
  /// when shared with another Graph copy, so the write never leaks into a
  /// published snapshot. Don't hold the reference across a copy of this
  /// graph or another mutation — take it, write, drop it.
  [[nodiscard]] AttrMap& nodeAttrs(NodeId n) { return nodeAttrs_.mutate(n); }
  [[nodiscard]] const AttrMap& nodeAttrs(NodeId n) const { return nodeAttrs_.at(n); }
  [[nodiscard]] AttrMap& edgeAttrs(EdgeId e) { return edgeAttrs_.mutate(e); }
  [[nodiscard]] const AttrMap& edgeAttrs(EdgeId e) const { return edgeAttrs_.at(e); }

  /// Out-adjacency for directed graphs, full adjacency for undirected.
  [[nodiscard]] std::span<const Neighbor> neighbors(NodeId n) const {
    return topo_->out.at(n);
  }
  /// In-adjacency; only meaningful for directed graphs (empty otherwise).
  [[nodiscard]] std::span<const Neighbor> inNeighbors(NodeId n) const {
    return directed_ ? std::span<const Neighbor>(topo_->in.at(n))
                     : std::span<const Neighbor>();
  }

  [[nodiscard]] std::size_t degree(NodeId n) const {
    return topo_->out.at(n).size() + (directed_ ? topo_->in.at(n).size() : 0);
  }
  [[nodiscard]] std::size_t outDegree(NodeId n) const { return topo_->out.at(n).size(); }
  [[nodiscard]] std::size_t inDegree(NodeId n) const {
    return directed_ ? topo_->in.at(n).size() : topo_->out.at(n).size();
  }

  /// Directed: edge u->v. Undirected: edge {u,v} in either orientation.
  [[nodiscard]] std::optional<EdgeId> findEdge(NodeId u, NodeId v) const;
  [[nodiscard]] bool hasEdge(NodeId u, NodeId v) const { return findEdge(u, v).has_value(); }

  [[nodiscard]] const std::string& nodeName(NodeId n) const {
    return topo_->names.at(n);
  }
  [[nodiscard]] std::optional<NodeId> findNode(std::string_view name) const;

  /// Graph-level attributes (e.g. generator provenance).
  [[nodiscard]] AttrMap& attrs() noexcept { return graphAttrs_; }
  [[nodiscard]] const AttrMap& attrs() const noexcept { return graphAttrs_; }

  /// 2|E| / (|V|(|V|-1)) for directed, 2|E| / (|V|(|V|-1)) undirected counts
  /// each unordered pair once; 0 for |V| < 2.
  [[nodiscard]] double density() const noexcept;

  /// A structurally independent deep copy: no shared topology, no shared
  /// attribute chunks. This is the pre-structural-sharing snapshot cost,
  /// kept for callers that want a mutation-isolated private graph (and as
  /// the baseline the mutation bench compares overlay snapshots against).
  [[nodiscard]] Graph detachedCopy() const;

  /// True when this graph currently shares its topology block with another
  /// copy (test/diagnostic hook).
  [[nodiscard]] bool sharesTopology() const noexcept {
    return topo_.use_count() > 1;
  }

 private:
  struct EdgeRec {
    NodeId src;
    NodeId dst;
  };

  /// Everything structural: immutable while shared. addNode/addEdge clone it
  /// first when another Graph copy still references it.
  struct Topo {
    std::vector<EdgeRec> edges;
    std::vector<std::string> names;
    std::unordered_map<std::string, NodeId> byName;
    std::vector<std::vector<Neighbor>> out;
    std::vector<std::vector<Neighbor>> in;  // directed only
    std::unordered_map<std::uint64_t, EdgeId> edgeIndex;
  };

  [[nodiscard]] const EdgeRec& edgeRec(EdgeId e) const { return topo_->edges.at(e); }
  [[nodiscard]] Topo& topoMut();
  [[nodiscard]] static const std::shared_ptr<Topo>& emptyTopo() noexcept;

  [[nodiscard]] std::uint64_t edgeKey(NodeId u, NodeId v) const noexcept;
  void checkNode(NodeId n) const;

  bool directed_;
  std::shared_ptr<Topo> topo_;
  util::CowChunks<AttrMap> nodeAttrs_;
  util::CowChunks<AttrMap> edgeAttrs_;
  AttrMap graphAttrs_;
};

}  // namespace netembed::graph
