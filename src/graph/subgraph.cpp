#include "graph/subgraph.hpp"

#include <stdexcept>
#include <unordered_map>

namespace netembed::graph {

namespace {
std::unordered_map<NodeId, NodeId> buildIndex(const Graph& g,
                                              const std::vector<NodeId>& nodes,
                                              Subgraph& out) {
  std::unordered_map<NodeId, NodeId> toNew;
  toNew.reserve(nodes.size());
  for (const NodeId original : nodes) {
    if (original >= g.nodeCount()) {
      throw std::out_of_range("inducedSubgraph: node id out of range");
    }
    const NodeId fresh = out.graph.addNode(g.nodeName(original));
    if (!toNew.emplace(original, fresh).second) {
      throw std::invalid_argument("inducedSubgraph: duplicate node id");
    }
    out.graph.nodeAttrs(fresh) = g.nodeAttrs(original);
    out.originalNode.push_back(original);
  }
  return toNew;
}
}  // namespace

Subgraph inducedSubgraph(const Graph& g, const std::vector<NodeId>& nodes) {
  Subgraph out{Graph(g.directed()), {}, {}};
  const auto toNew = buildIndex(g, nodes, out);
  for (const NodeId original : nodes) {
    for (const Neighbor& nb : g.neighbors(original)) {
      const auto it = toNew.find(nb.node);
      if (it == toNew.end()) continue;
      const NodeId u = toNew.at(original);
      const NodeId v = it->second;
      // For undirected graphs each edge appears in both adjacency lists;
      // keep the first encounter only.
      if (out.graph.hasEdge(u, v)) continue;
      const EdgeId fresh = out.graph.addEdge(u, v);
      out.graph.edgeAttrs(fresh) = g.edgeAttrs(nb.edge);
      out.originalEdge.push_back(nb.edge);
    }
  }
  return out;
}

Subgraph edgeSubgraph(const Graph& g, const std::vector<NodeId>& nodes,
                      const std::vector<EdgeId>& edges) {
  Subgraph out{Graph(g.directed()), {}, {}};
  const auto toNew = buildIndex(g, nodes, out);
  for (const EdgeId e : edges) {
    if (e >= g.edgeCount()) throw std::out_of_range("edgeSubgraph: edge id out of range");
    const auto src = toNew.find(g.edgeSource(e));
    const auto dst = toNew.find(g.edgeTarget(e));
    if (src == toNew.end() || dst == toNew.end()) {
      throw std::invalid_argument("edgeSubgraph: edge endpoint not in node set");
    }
    const EdgeId fresh = out.graph.addEdge(src->second, dst->second);
    out.graph.edgeAttrs(fresh) = g.edgeAttrs(e);
    out.originalEdge.push_back(e);
  }
  return out;
}

}  // namespace netembed::graph
