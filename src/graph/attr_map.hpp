#pragma once
// Attribute maps keyed by process-interned attribute names.
//
// Interning turns the expression VM's attribute loads into an integer-indexed
// binary search over a small flat vector instead of string hashing; this is
// the hot path of stage-1 filter construction (|E_Q| x |E_R| evaluations).

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "graph/attr_value.hpp"

namespace netembed::graph {

using AttrId = std::uint32_t;

/// Intern an attribute name -> stable process-wide id. Thread-safe; lookups
/// of already-interned names take a shared lock only.
[[nodiscard]] AttrId attrId(std::string_view name);

/// Reverse lookup. Requires a previously interned id.
[[nodiscard]] const std::string& attrName(AttrId id);

/// Look up without interning; nullopt when the name was never interned.
[[nodiscard]] std::optional<AttrId> findAttrId(std::string_view name);

/// Flat sorted association of AttrId -> AttrValue. Graphs typically carry a
/// handful of attributes per element, so a sorted vector beats any hash map.
class AttrMap {
 public:
  void set(AttrId id, AttrValue value);
  void set(std::string_view name, AttrValue value) { set(attrId(name), std::move(value)); }

  /// nullptr when absent.
  [[nodiscard]] const AttrValue* get(AttrId id) const noexcept;
  [[nodiscard]] const AttrValue* get(std::string_view name) const noexcept;

  [[nodiscard]] bool has(AttrId id) const noexcept { return get(id) != nullptr; }
  [[nodiscard]] bool has(std::string_view name) const noexcept {
    return get(name) != nullptr;
  }

  /// Value access with a thrown error on absence (for loader code paths).
  [[nodiscard]] const AttrValue& at(std::string_view name) const;

  /// Numeric convenience with default.
  [[nodiscard]] double getDouble(std::string_view name, double fallback) const;

  bool erase(AttrId id);

  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }

  using value_type = std::pair<AttrId, AttrValue>;
  [[nodiscard]] auto begin() const noexcept { return items_.begin(); }
  [[nodiscard]] auto end() const noexcept { return items_.end(); }

  friend bool operator==(const AttrMap& a, const AttrMap& b) {
    return a.items_ == b.items_;
  }

 private:
  std::vector<value_type> items_;  // sorted by AttrId
};

}  // namespace netembed::graph
