#pragma once
// Induced-subgraph extraction, with provenance back to the original graph.
// The query sampler (topo/sample) builds on this: queries in the paper's
// PlanetLab/BRITE experiments are connected subgraphs of the hosting network.

#include <vector>

#include "graph/graph.hpp"

namespace netembed::graph {

/// A subgraph plus the original node/edge each element came from.
struct Subgraph {
  Graph graph;
  std::vector<NodeId> originalNode;  // subgraph node id -> original node id
  std::vector<EdgeId> originalEdge;  // subgraph edge id -> original edge id
};

/// The subgraph induced by `nodes` (all original edges between them), with
/// node and edge attributes copied. Node order in `nodes` defines the new
/// node ids; duplicate or out-of-range ids throw.
[[nodiscard]] Subgraph inducedSubgraph(const Graph& g, const std::vector<NodeId>& nodes);

/// Like inducedSubgraph but keeping only the given original edges (each must
/// connect two selected nodes).
[[nodiscard]] Subgraph edgeSubgraph(const Graph& g, const std::vector<NodeId>& nodes,
                                    const std::vector<EdgeId>& edges);

}  // namespace netembed::graph
