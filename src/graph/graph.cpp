#include "graph/graph.hpp"

#include <stdexcept>

namespace netembed::graph {

NodeId Graph::addNode(std::string name) {
  const auto id = static_cast<NodeId>(nodeAttrs_.size());
  if (name.empty()) name = "n" + std::to_string(id);
  const auto [it, inserted] = byName_.try_emplace(name, id);
  (void)it;
  if (!inserted) throw std::invalid_argument("Graph: duplicate node name '" + name + "'");
  nodeAttrs_.emplace_back();
  names_.push_back(std::move(name));
  out_.emplace_back();
  if (directed_) in_.emplace_back();
  return id;
}

void Graph::checkNode(NodeId n) const {
  if (n >= nodeCount()) throw std::out_of_range("Graph: node id out of range");
}

std::uint64_t Graph::edgeKey(NodeId u, NodeId v) const noexcept {
  if (!directed_ && u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

EdgeId Graph::addEdge(NodeId u, NodeId v) {
  checkNode(u);
  checkNode(v);
  if (u == v) throw std::invalid_argument("Graph: self-loops are not allowed");
  const std::uint64_t key = edgeKey(u, v);
  if (edgeIndex_.count(key) != 0) {
    throw std::invalid_argument("Graph: duplicate edge (" + names_[u] + ", " +
                                names_[v] + ")");
  }
  const auto id = static_cast<EdgeId>(edges_.size());
  edges_.push_back({u, v});
  edgeAttrs_.emplace_back();
  edgeIndex_.emplace(key, id);
  out_[u].push_back({v, id});
  if (directed_) {
    in_[v].push_back({u, id});
  } else {
    out_[v].push_back({u, id});
  }
  return id;
}

NodeId Graph::edgeOther(EdgeId e, NodeId n) const {
  const EdgeRec& rec = edges_.at(e);
  if (rec.src == n) return rec.dst;
  if (rec.dst == n) return rec.src;
  throw std::invalid_argument("Graph: node is not an endpoint of edge");
}

std::optional<EdgeId> Graph::findEdge(NodeId u, NodeId v) const {
  if (u >= nodeCount() || v >= nodeCount()) return std::nullopt;
  const auto it = edgeIndex_.find(edgeKey(u, v));
  if (it == edgeIndex_.end()) return std::nullopt;
  return it->second;
}

std::optional<NodeId> Graph::findNode(std::string_view name) const {
  const auto it = byName_.find(std::string(name));
  if (it == byName_.end()) return std::nullopt;
  return it->second;
}

double Graph::density() const noexcept {
  const double n = static_cast<double>(nodeCount());
  if (n < 2) return 0.0;
  const double pairs = directed_ ? n * (n - 1) : n * (n - 1) / 2.0;
  return static_cast<double>(edgeCount()) / pairs;
}

}  // namespace netembed::graph
