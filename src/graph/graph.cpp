#include "graph/graph.hpp"

#include <stdexcept>
#include <utility>

namespace netembed::graph {

Graph::Graph(bool directed)
    : directed_(directed), topo_(std::make_shared<Topo>()) {
  // Any graph that can be moved from was constructed first, so touching the
  // shared empty block here guarantees the noexcept moves below never hit
  // its (allocating) first-use initialization.
  (void)emptyTopo();
}

const std::shared_ptr<Graph::Topo>& Graph::emptyTopo() noexcept {
  // The block every moved-from Graph points at. Held here forever, so its
  // use_count is always >= 2 while any graph references it — topoMut()
  // therefore always clones before the first structural mutation.
  static const std::shared_ptr<Topo> empty = std::make_shared<Topo>();
  return empty;
}

Graph::Graph(Graph&& other) noexcept
    : directed_(other.directed_),
      topo_(std::exchange(other.topo_, emptyTopo())),
      nodeAttrs_(std::move(other.nodeAttrs_)),
      edgeAttrs_(std::move(other.edgeAttrs_)),
      graphAttrs_(std::move(other.graphAttrs_)) {}

Graph& Graph::operator=(Graph&& other) noexcept {
  if (this == &other) return *this;
  directed_ = other.directed_;
  topo_ = std::exchange(other.topo_, emptyTopo());
  nodeAttrs_ = std::move(other.nodeAttrs_);
  edgeAttrs_ = std::move(other.edgeAttrs_);
  graphAttrs_ = std::move(other.graphAttrs_);
  return *this;
}

Graph::Topo& Graph::topoMut() {
  // Structural copy-on-write: the topology block is immutable while shared
  // with another Graph copy (a published service snapshot), so a structural
  // mutation on this copy clones it first. Attribute-only mutations never
  // come through here.
  if (topo_.use_count() > 1) topo_ = std::make_shared<Topo>(*topo_);
  return *topo_;
}

NodeId Graph::addNode(std::string name) {
  const auto id = static_cast<NodeId>(nodeAttrs_.size());
  if (name.empty()) name = "n" + std::to_string(id);
  Topo& topo = topoMut();
  const auto [it, inserted] = topo.byName.try_emplace(name, id);
  (void)it;
  if (!inserted) throw std::invalid_argument("Graph: duplicate node name '" + name + "'");
  nodeAttrs_.push_back(AttrMap{});
  topo.names.push_back(std::move(name));
  topo.out.emplace_back();
  if (directed_) topo.in.emplace_back();
  return id;
}

void Graph::checkNode(NodeId n) const {
  if (n >= nodeCount()) throw std::out_of_range("Graph: node id out of range");
}

std::uint64_t Graph::edgeKey(NodeId u, NodeId v) const noexcept {
  if (!directed_ && u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

EdgeId Graph::addEdge(NodeId u, NodeId v) {
  checkNode(u);
  checkNode(v);
  if (u == v) throw std::invalid_argument("Graph: self-loops are not allowed");
  const std::uint64_t key = edgeKey(u, v);
  Topo& topo = topoMut();
  if (topo.edgeIndex.count(key) != 0) {
    throw std::invalid_argument("Graph: duplicate edge (" + topo.names[u] + ", " +
                                topo.names[v] + ")");
  }
  const auto id = static_cast<EdgeId>(topo.edges.size());
  topo.edges.push_back({u, v});
  edgeAttrs_.push_back(AttrMap{});
  topo.edgeIndex.emplace(key, id);
  topo.out[u].push_back({v, id});
  if (directed_) {
    topo.in[v].push_back({u, id});
  } else {
    topo.out[v].push_back({u, id});
  }
  return id;
}

NodeId Graph::edgeOther(EdgeId e, NodeId n) const {
  const EdgeRec& rec = edgeRec(e);
  if (rec.src == n) return rec.dst;
  if (rec.dst == n) return rec.src;
  throw std::invalid_argument("Graph: node is not an endpoint of edge");
}

std::optional<EdgeId> Graph::findEdge(NodeId u, NodeId v) const {
  if (u >= nodeCount() || v >= nodeCount()) return std::nullopt;
  const auto it = topo_->edgeIndex.find(edgeKey(u, v));
  if (it == topo_->edgeIndex.end()) return std::nullopt;
  return it->second;
}

std::optional<NodeId> Graph::findNode(std::string_view name) const {
  const auto it = topo_->byName.find(std::string(name));
  if (it == topo_->byName.end()) return std::nullopt;
  return it->second;
}

double Graph::density() const noexcept {
  const double n = static_cast<double>(nodeCount());
  if (n < 2) return 0.0;
  const double pairs = directed_ ? n * (n - 1) : n * (n - 1) / 2.0;
  return static_cast<double>(edgeCount()) / pairs;
}

Graph Graph::detachedCopy() const {
  Graph out(directed_);
  out.topo_ = std::make_shared<Topo>(*topo_);
  out.nodeAttrs_ = nodeAttrs_.detached();
  out.edgeAttrs_ = edgeAttrs_.detached();
  out.graphAttrs_ = graphAttrs_;
  return out;
}

}  // namespace netembed::graph
