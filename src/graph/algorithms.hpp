#pragma once
// Classic graph algorithms used by generators, samplers, and the service's
// link->path mapping extension. All treat directed graphs as weakly connected
// where connectivity is concerned (matches how topology generators reason).

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "graph/graph.hpp"

namespace netembed::graph {

/// BFS order from `start` (ignoring edge direction). Unreached nodes are
/// absent from the result.
[[nodiscard]] std::vector<NodeId> bfsOrder(const Graph& g, NodeId start);

/// Component label per node (labels are dense, starting at 0) and count.
struct Components {
  std::vector<std::uint32_t> label;
  std::uint32_t count = 0;
};
[[nodiscard]] Components connectedComponents(const Graph& g);

[[nodiscard]] bool isConnected(const Graph& g);

/// histogram[d] = number of nodes of (total) degree d.
[[nodiscard]] std::vector<std::size_t> degreeHistogram(const Graph& g);

[[nodiscard]] double averageDegree(const Graph& g);

inline constexpr double kUnreachable = std::numeric_limits<double>::infinity();

/// Single-source shortest paths under a non-negative edge weight function.
/// For undirected graphs edges are traversed both ways; for directed graphs
/// only source->target.
struct ShortestPaths {
  std::vector<double> distance;   // kUnreachable when not reachable
  std::vector<NodeId> parent;     // kInvalidNode at source / unreachable
  std::vector<EdgeId> parentEdge; // kInvalidEdge likewise
};
[[nodiscard]] ShortestPaths dijkstra(
    const Graph& g, NodeId source,
    const std::function<double(EdgeId)>& weight);

/// Reconstruct the node path source..target from a dijkstra result;
/// empty when unreachable.
[[nodiscard]] std::vector<NodeId> extractPath(const ShortestPaths& sp, NodeId target);

/// Edge ids along the path (one fewer entry than extractPath).
[[nodiscard]] std::vector<EdgeId> extractPathEdges(const ShortestPaths& sp, NodeId target);

/// Unweighted eccentricity-based diameter via BFS from every node.
/// O(V * (V+E)); intended for query-sized graphs.
[[nodiscard]] std::size_t diameter(const Graph& g);

}  // namespace netembed::graph
