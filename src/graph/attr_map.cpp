#include "graph/attr_map.hpp"

#include <algorithm>
#include <mutex>
#include <shared_mutex>
#include <stdexcept>
#include <unordered_map>

namespace netembed::graph {

namespace {
struct Registry {
  std::shared_mutex mutex;
  std::unordered_map<std::string, AttrId> byName;
  std::vector<std::string> names;
};

Registry& registry() {
  static Registry r;
  return r;
}
}  // namespace

AttrId attrId(std::string_view name) {
  Registry& r = registry();
  {
    std::shared_lock lock(r.mutex);
    const auto it = r.byName.find(std::string(name));
    if (it != r.byName.end()) return it->second;
  }
  std::unique_lock lock(r.mutex);
  const auto [it, inserted] =
      r.byName.try_emplace(std::string(name), static_cast<AttrId>(r.names.size()));
  if (inserted) r.names.emplace_back(name);
  return it->second;
}

const std::string& attrName(AttrId id) {
  Registry& r = registry();
  std::shared_lock lock(r.mutex);
  if (id >= r.names.size()) throw std::out_of_range("attrName: unknown AttrId");
  return r.names[id];
}

std::optional<AttrId> findAttrId(std::string_view name) {
  Registry& r = registry();
  std::shared_lock lock(r.mutex);
  const auto it = r.byName.find(std::string(name));
  if (it == r.byName.end()) return std::nullopt;
  return it->second;
}

void AttrMap::set(AttrId id, AttrValue value) {
  const auto it = std::lower_bound(
      items_.begin(), items_.end(), id,
      [](const value_type& item, AttrId key) { return item.first < key; });
  if (it != items_.end() && it->first == id) {
    it->second = std::move(value);
  } else {
    items_.emplace(it, id, std::move(value));
  }
}

const AttrValue* AttrMap::get(AttrId id) const noexcept {
  const auto it = std::lower_bound(
      items_.begin(), items_.end(), id,
      [](const value_type& item, AttrId key) { return item.first < key; });
  if (it != items_.end() && it->first == id) return &it->second;
  return nullptr;
}

const AttrValue* AttrMap::get(std::string_view name) const noexcept {
  const auto id = findAttrId(name);
  if (!id) return nullptr;
  return get(*id);
}

const AttrValue& AttrMap::at(std::string_view name) const {
  const AttrValue* v = get(name);
  if (!v) throw std::out_of_range("AttrMap: missing attribute '" + std::string(name) + "'");
  return *v;
}

double AttrMap::getDouble(std::string_view name, double fallback) const {
  const AttrValue* v = get(name);
  if (!v || !v->isNumeric()) return fallback;
  return v->asDouble();
}

bool AttrMap::erase(AttrId id) {
  const auto it = std::lower_bound(
      items_.begin(), items_.end(), id,
      [](const value_type& item, AttrId key) { return item.first < key; });
  if (it != items_.end() && it->first == id) {
    items_.erase(it);
    return true;
  }
  return false;
}

}  // namespace netembed::graph
