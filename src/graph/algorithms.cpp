#include "graph/algorithms.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace netembed::graph {

namespace {
/// Visit all neighbours of n, ignoring direction.
template <typename Fn>
void forEachUndirected(const Graph& g, NodeId n, Fn&& fn) {
  for (const Neighbor& nb : g.neighbors(n)) fn(nb);
  if (g.directed()) {
    for (const Neighbor& nb : g.inNeighbors(n)) fn(nb);
  }
}
}  // namespace

std::vector<NodeId> bfsOrder(const Graph& g, NodeId start) {
  if (start >= g.nodeCount()) throw std::out_of_range("bfsOrder: bad start node");
  std::vector<bool> seen(g.nodeCount(), false);
  std::vector<NodeId> order;
  order.reserve(g.nodeCount());
  std::queue<NodeId> frontier;
  frontier.push(start);
  seen[start] = true;
  while (!frontier.empty()) {
    const NodeId n = frontier.front();
    frontier.pop();
    order.push_back(n);
    forEachUndirected(g, n, [&](const Neighbor& nb) {
      if (!seen[nb.node]) {
        seen[nb.node] = true;
        frontier.push(nb.node);
      }
    });
  }
  return order;
}

Components connectedComponents(const Graph& g) {
  Components out;
  out.label.assign(g.nodeCount(), static_cast<std::uint32_t>(-1));
  for (NodeId n = 0; n < g.nodeCount(); ++n) {
    if (out.label[n] != static_cast<std::uint32_t>(-1)) continue;
    const std::uint32_t id = out.count++;
    std::queue<NodeId> frontier;
    frontier.push(n);
    out.label[n] = id;
    while (!frontier.empty()) {
      const NodeId cur = frontier.front();
      frontier.pop();
      forEachUndirected(g, cur, [&](const Neighbor& nb) {
        if (out.label[nb.node] == static_cast<std::uint32_t>(-1)) {
          out.label[nb.node] = id;
          frontier.push(nb.node);
        }
      });
    }
  }
  return out;
}

bool isConnected(const Graph& g) {
  if (g.nodeCount() <= 1) return true;
  return connectedComponents(g).count == 1;
}

std::vector<std::size_t> degreeHistogram(const Graph& g) {
  std::size_t maxDeg = 0;
  for (NodeId n = 0; n < g.nodeCount(); ++n) maxDeg = std::max(maxDeg, g.degree(n));
  std::vector<std::size_t> hist(maxDeg + 1, 0);
  for (NodeId n = 0; n < g.nodeCount(); ++n) ++hist[g.degree(n)];
  return hist;
}

double averageDegree(const Graph& g) {
  if (g.nodeCount() == 0) return 0.0;
  double total = 0.0;
  for (NodeId n = 0; n < g.nodeCount(); ++n) total += static_cast<double>(g.degree(n));
  return total / static_cast<double>(g.nodeCount());
}

ShortestPaths dijkstra(const Graph& g, NodeId source,
                       const std::function<double(EdgeId)>& weight) {
  if (source >= g.nodeCount()) throw std::out_of_range("dijkstra: bad source");
  ShortestPaths sp;
  sp.distance.assign(g.nodeCount(), kUnreachable);
  sp.parent.assign(g.nodeCount(), kInvalidNode);
  sp.parentEdge.assign(g.nodeCount(), kInvalidEdge);
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  sp.distance[source] = 0.0;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [dist, n] = heap.top();
    heap.pop();
    if (dist > sp.distance[n]) continue;  // stale entry
    for (const Neighbor& nb : g.neighbors(n)) {
      const double w = weight(nb.edge);
      if (w < 0.0) throw std::invalid_argument("dijkstra: negative edge weight");
      const double candidate = dist + w;
      if (candidate < sp.distance[nb.node]) {
        sp.distance[nb.node] = candidate;
        sp.parent[nb.node] = n;
        sp.parentEdge[nb.node] = nb.edge;
        heap.emplace(candidate, nb.node);
      }
    }
  }
  return sp;
}

std::vector<NodeId> extractPath(const ShortestPaths& sp, NodeId target) {
  if (target >= sp.distance.size() || sp.distance[target] == kUnreachable) return {};
  std::vector<NodeId> path;
  for (NodeId n = target; n != kInvalidNode; n = sp.parent[n]) path.push_back(n);
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<EdgeId> extractPathEdges(const ShortestPaths& sp, NodeId target) {
  if (target >= sp.distance.size() || sp.distance[target] == kUnreachable) return {};
  std::vector<EdgeId> edges;
  for (NodeId n = target; sp.parent[n] != kInvalidNode; n = sp.parent[n]) {
    edges.push_back(sp.parentEdge[n]);
  }
  std::reverse(edges.begin(), edges.end());
  return edges;
}

std::size_t diameter(const Graph& g) {
  std::size_t best = 0;
  for (NodeId start = 0; start < g.nodeCount(); ++start) {
    std::vector<std::int64_t> depth(g.nodeCount(), -1);
    std::queue<NodeId> frontier;
    frontier.push(start);
    depth[start] = 0;
    while (!frontier.empty()) {
      const NodeId n = frontier.front();
      frontier.pop();
      best = std::max(best, static_cast<std::size_t>(depth[n]));
      forEachUndirected(g, n, [&](const Neighbor& nb) {
        if (depth[nb.node] < 0) {
          depth[nb.node] = depth[n] + 1;
          frontier.push(nb.node);
        }
      });
    }
  }
  return best;
}

}  // namespace netembed::graph
