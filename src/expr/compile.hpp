#pragma once
// AST -> stack-bytecode compiler.
//
// Stage-1 filter construction evaluates one expression |E_Q| x |E_R| times;
// a flat instruction array with pre-resolved attribute ids removes the
// pointer-chasing and branch-misprediction cost of walking the AST.

#include <cstdint>
#include <string>
#include <vector>

#include "expr/ast.hpp"

namespace netembed::expr {

enum class OpCode : std::uint8_t {
  PushConst,   // a = constant index
  PushAttr,    // a = ObjectId, b = AttrId
  Not,         // truthiness negation
  Negate,      // numeric negation
  Eq, Ne, Lt, Le, Gt, Ge,
  Add, Sub, Mul, Div,
  Abs, Sqrt, Floor, Ceil,  // 1-arg builtins
  Min, Max, IsBoundTo,     // 2-arg builtins
  Truthy,      // coerce top of stack to Bool via truthiness
  JumpIfFalse, // a = target; pops, jumps when not truthy
  JumpIfTrue,  // a = target; pops, jumps when truthy
  Jump,        // a = target
  PushTrue,
  PushFalse,
};

struct Instr {
  OpCode op;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};

/// Executable form of an expression. Immutable after compilation; safe to
/// evaluate concurrently from many threads (each evaluation uses its own
/// small stack).
class Program {
 public:
  [[nodiscard]] const std::vector<Instr>& code() const noexcept { return code_; }
  [[nodiscard]] const std::vector<Value>& constants() const noexcept { return constants_; }
  [[nodiscard]] std::uint32_t objectsUsed() const noexcept { return objectsUsed_; }
  /// Interned attribute ids this program reads (sorted ascending, unique).
  /// Attribute references are static in the language, so this is exact: a
  /// host mutation touching none of these ids cannot change any evaluation —
  /// the incremental-plan layer uses that to prove a delta irrelevant.
  [[nodiscard]] const std::vector<std::uint32_t>& attrsUsed() const noexcept {
    return attrsUsed_;
  }
  [[nodiscard]] std::size_t maxStackDepth() const noexcept { return maxStack_; }

  /// Human-readable disassembly, for tests and debugging.
  [[nodiscard]] std::string disassemble() const;

 private:
  friend Program compile(const Ast& ast);
  std::vector<Instr> code_;
  std::vector<Value> constants_;
  std::vector<std::unique_ptr<std::string>> stringPool_;  // owns string constants
  std::uint32_t objectsUsed_ = 0;
  std::vector<std::uint32_t> attrsUsed_;
  std::size_t maxStack_ = 0;
};

[[nodiscard]] Program compile(const Ast& ast);

}  // namespace netembed::expr
