#include "expr/compile.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace netembed::expr {

namespace {

/// Mutable buffers the Compiler fills; compile() moves them into a Program.
struct ProgramBuffers {
  std::vector<Instr> code;
  std::vector<Value> constants;
  std::vector<std::unique_ptr<std::string>> stringPool;
  std::uint32_t objectsUsed = 0;
  std::size_t maxStack = 0;
};

class Compiler {
 public:
  explicit Compiler(ProgramBuffers& out) : out_(out) {}

  void emitNode(const Node& node) {
    switch (node.kind) {
      case Node::Kind::Literal: emitLiteral(node); break;
      case Node::Kind::AttrRef: emitAttrRef(node); break;
      case Node::Kind::Unary: emitUnary(node); break;
      case Node::Kind::Binary: emitBinary(node); break;
      case Node::Kind::Call: emitCall(node); break;
    }
  }

  void finalize() {
    // Final result is used via truthiness; normalize to Bool so callers can
    // rely on a Bool outcome.
    emit(OpCode::Truthy);
  }

 private:
  std::uint32_t emit(OpCode op, std::uint32_t a = 0, std::uint32_t b = 0) {
    out_.code.push_back({op, a, b});
    trackStack(op);
    return static_cast<std::uint32_t>(out_.code.size() - 1);
  }

  void trackStack(OpCode op) {
    switch (op) {
      case OpCode::PushConst:
      case OpCode::PushAttr:
      case OpCode::PushTrue:
      case OpCode::PushFalse:
        ++depth_;
        break;
      case OpCode::Eq: case OpCode::Ne: case OpCode::Lt: case OpCode::Le:
      case OpCode::Gt: case OpCode::Ge: case OpCode::Add: case OpCode::Sub:
      case OpCode::Mul: case OpCode::Div: case OpCode::Min: case OpCode::Max:
      case OpCode::IsBoundTo:
      case OpCode::JumpIfFalse:
      case OpCode::JumpIfTrue:
        --depth_;
        break;
      default:
        break;
    }
    out_.maxStack = std::max(out_.maxStack, depth_);
  }

  void patch(std::uint32_t at) {
    out_.code[at].a = static_cast<std::uint32_t>(out_.code.size());
  }

  std::uint32_t addConstant(const Value& v) {
    if (v.isString()) {
      out_.stringPool.push_back(std::make_unique<std::string>(v.asString()));
      out_.constants.push_back(Value::string(*out_.stringPool.back()));
    } else {
      out_.constants.push_back(v);
    }
    return static_cast<std::uint32_t>(out_.constants.size() - 1);
  }

  void emitLiteral(const Node& node) {
    if (node.literal.isBool()) {
      emit(node.literal.asBool() ? OpCode::PushTrue : OpCode::PushFalse);
      return;
    }
    emit(OpCode::PushConst, addConstant(node.literal));
  }

  void emitAttrRef(const Node& node) {
    out_.objectsUsed |= 1u << static_cast<std::uint32_t>(node.object);
    emit(OpCode::PushAttr, static_cast<std::uint32_t>(node.object), node.attr);
  }

  void emitUnary(const Node& node) {
    emitNode(*node.lhs);
    emit(node.unaryOp == UnaryOp::Not ? OpCode::Not : OpCode::Negate);
  }

  void emitBinary(const Node& node) {
    switch (node.binaryOp) {
      case BinaryOp::And: {
        emitNode(*node.lhs);
        emit(OpCode::Truthy);
        const std::uint32_t jumpFalse = emit(OpCode::JumpIfFalse);
        emitNode(*node.rhs);
        emit(OpCode::Truthy);
        const std::uint32_t jumpEnd = emit(OpCode::Jump);
        patch(jumpFalse);
        emit(OpCode::PushFalse);
        --depth_;  // both branches push exactly one value
        patch(jumpEnd);
        return;
      }
      case BinaryOp::Or: {
        emitNode(*node.lhs);
        emit(OpCode::Truthy);
        const std::uint32_t jumpTrue = emit(OpCode::JumpIfTrue);
        emitNode(*node.rhs);
        emit(OpCode::Truthy);
        const std::uint32_t jumpEnd = emit(OpCode::Jump);
        patch(jumpTrue);
        emit(OpCode::PushTrue);
        --depth_;
        patch(jumpEnd);
        return;
      }
      default: break;
    }
    emitNode(*node.lhs);
    emitNode(*node.rhs);
    switch (node.binaryOp) {
      case BinaryOp::Eq: emit(OpCode::Eq); break;
      case BinaryOp::Ne: emit(OpCode::Ne); break;
      case BinaryOp::Lt: emit(OpCode::Lt); break;
      case BinaryOp::Le: emit(OpCode::Le); break;
      case BinaryOp::Gt: emit(OpCode::Gt); break;
      case BinaryOp::Ge: emit(OpCode::Ge); break;
      case BinaryOp::Add: emit(OpCode::Add); break;
      case BinaryOp::Sub: emit(OpCode::Sub); break;
      case BinaryOp::Mul: emit(OpCode::Mul); break;
      case BinaryOp::Div: emit(OpCode::Div); break;
      default: throw std::logic_error("compile: unreachable binary op");
    }
  }

  void emitCall(const Node& node) {
    for (const NodePtr& arg : node.args) emitNode(*arg);
    switch (node.builtin) {
      case Builtin::Abs: emit(OpCode::Abs); break;
      case Builtin::Sqrt: emit(OpCode::Sqrt); break;
      case Builtin::Floor: emit(OpCode::Floor); break;
      case Builtin::Ceil: emit(OpCode::Ceil); break;
      case Builtin::Min: emit(OpCode::Min); break;
      case Builtin::Max: emit(OpCode::Max); break;
      case Builtin::IsBoundTo: emit(OpCode::IsBoundTo); break;
    }
  }

  ProgramBuffers& out_;
  std::size_t depth_ = 0;
};

const char* opName(OpCode op) {
  switch (op) {
    case OpCode::PushConst: return "PUSH_CONST";
    case OpCode::PushAttr: return "PUSH_ATTR";
    case OpCode::Not: return "NOT";
    case OpCode::Negate: return "NEG";
    case OpCode::Eq: return "EQ";
    case OpCode::Ne: return "NE";
    case OpCode::Lt: return "LT";
    case OpCode::Le: return "LE";
    case OpCode::Gt: return "GT";
    case OpCode::Ge: return "GE";
    case OpCode::Add: return "ADD";
    case OpCode::Sub: return "SUB";
    case OpCode::Mul: return "MUL";
    case OpCode::Div: return "DIV";
    case OpCode::Abs: return "ABS";
    case OpCode::Sqrt: return "SQRT";
    case OpCode::Floor: return "FLOOR";
    case OpCode::Ceil: return "CEIL";
    case OpCode::Min: return "MIN";
    case OpCode::Max: return "MAX";
    case OpCode::IsBoundTo: return "IS_BOUND_TO";
    case OpCode::Truthy: return "TRUTHY";
    case OpCode::JumpIfFalse: return "JF";
    case OpCode::JumpIfTrue: return "JT";
    case OpCode::Jump: return "JMP";
    case OpCode::PushTrue: return "PUSH_TRUE";
    case OpCode::PushFalse: return "PUSH_FALSE";
  }
  return "?";
}

}  // namespace

Program compile(const Ast& ast) {
  if (!ast.root) throw std::invalid_argument("compile: empty AST");
  ProgramBuffers buffers;
  Compiler compiler(buffers);
  compiler.emitNode(*ast.root);
  compiler.finalize();
  Program program;
  program.code_ = std::move(buffers.code);
  program.constants_ = std::move(buffers.constants);
  program.stringPool_ = std::move(buffers.stringPool);
  program.objectsUsed_ = buffers.objectsUsed;
  program.maxStack_ = buffers.maxStack;
  for (const Instr& instr : program.code_) {
    if (instr.op == OpCode::PushAttr) program.attrsUsed_.push_back(instr.b);
  }
  std::sort(program.attrsUsed_.begin(), program.attrsUsed_.end());
  program.attrsUsed_.erase(
      std::unique(program.attrsUsed_.begin(), program.attrsUsed_.end()),
      program.attrsUsed_.end());
  return program;
}

std::string Program::disassemble() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < code_.size(); ++i) {
    const Instr& instr = code_[i];
    out << i << ": " << opName(instr.op);
    switch (instr.op) {
      case OpCode::PushConst:
        out << " " << constants_[instr.a].toString();
        break;
      case OpCode::PushAttr:
        out << " " << objectName(static_cast<ObjectId>(instr.a)) << "."
            << graph::attrName(instr.b);
        break;
      case OpCode::Jump:
      case OpCode::JumpIfFalse:
      case OpCode::JumpIfTrue:
        out << " -> " << instr.a;
        break;
      default:
        break;
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace netembed::expr
