#include "expr/parser.hpp"

#include <optional>

namespace netembed::expr {

namespace {

std::optional<ObjectId> objectFromName(std::string_view name) {
  if (name == "vEdge") return ObjectId::VEdge;
  if (name == "rEdge") return ObjectId::REdge;
  if (name == "vSource") return ObjectId::VSource;
  if (name == "vTarget") return ObjectId::VTarget;
  if (name == "rSource") return ObjectId::RSource;
  if (name == "rTarget") return ObjectId::RTarget;
  if (name == "vNode") return ObjectId::VNode;
  if (name == "rNode") return ObjectId::RNode;
  return std::nullopt;
}

std::optional<Builtin> builtinFromName(std::string_view name) {
  if (name == "abs") return Builtin::Abs;
  if (name == "sqrt") return Builtin::Sqrt;
  if (name == "min") return Builtin::Min;
  if (name == "max") return Builtin::Max;
  if (name == "floor") return Builtin::Floor;
  if (name == "ceil") return Builtin::Ceil;
  if (name == "isBoundTo") return Builtin::IsBoundTo;
  return std::nullopt;
}

class Parser {
 public:
  explicit Parser(std::string_view source) : tokens_(tokenize(source)) {
    ast_.source = std::string(source);
  }

  Ast run() {
    ast_.root = parseOr();
    expect(TokenKind::End);
    return std::move(ast_);
  }

 private:
  [[nodiscard]] const Token& cur() const { return tokens_[pos_]; }

  [[nodiscard]] bool accept(TokenKind kind) {
    if (cur().kind != kind) return false;
    ++pos_;
    return true;
  }

  void expect(TokenKind kind) {
    if (!accept(kind)) {
      throw SyntaxError(std::string("expected ") + std::string(tokenKindName(kind)) +
                            ", found " + std::string(tokenKindName(cur().kind)),
                        cur().offset);
    }
  }

  static NodePtr makeBinary(BinaryOp op, NodePtr lhs, NodePtr rhs) {
    auto node = std::make_unique<Node>();
    node->kind = Node::Kind::Binary;
    node->binaryOp = op;
    node->lhs = std::move(lhs);
    node->rhs = std::move(rhs);
    return node;
  }

  NodePtr parseOr() {
    NodePtr lhs = parseAnd();
    while (accept(TokenKind::OrOr)) lhs = makeBinary(BinaryOp::Or, std::move(lhs), parseAnd());
    return lhs;
  }

  NodePtr parseAnd() {
    NodePtr lhs = parseEquality();
    while (accept(TokenKind::AndAnd)) {
      lhs = makeBinary(BinaryOp::And, std::move(lhs), parseEquality());
    }
    return lhs;
  }

  NodePtr parseEquality() {
    NodePtr lhs = parseRelational();
    for (;;) {
      if (accept(TokenKind::Eq)) {
        lhs = makeBinary(BinaryOp::Eq, std::move(lhs), parseRelational());
      } else if (accept(TokenKind::Ne)) {
        lhs = makeBinary(BinaryOp::Ne, std::move(lhs), parseRelational());
      } else {
        return lhs;
      }
    }
  }

  NodePtr parseRelational() {
    NodePtr lhs = parseAdditive();
    for (;;) {
      if (accept(TokenKind::Lt)) {
        lhs = makeBinary(BinaryOp::Lt, std::move(lhs), parseAdditive());
      } else if (accept(TokenKind::Le)) {
        lhs = makeBinary(BinaryOp::Le, std::move(lhs), parseAdditive());
      } else if (accept(TokenKind::Gt)) {
        lhs = makeBinary(BinaryOp::Gt, std::move(lhs), parseAdditive());
      } else if (accept(TokenKind::Ge)) {
        lhs = makeBinary(BinaryOp::Ge, std::move(lhs), parseAdditive());
      } else {
        return lhs;
      }
    }
  }

  NodePtr parseAdditive() {
    NodePtr lhs = parseMultiplicative();
    for (;;) {
      if (accept(TokenKind::Plus)) {
        lhs = makeBinary(BinaryOp::Add, std::move(lhs), parseMultiplicative());
      } else if (accept(TokenKind::Minus)) {
        lhs = makeBinary(BinaryOp::Sub, std::move(lhs), parseMultiplicative());
      } else {
        return lhs;
      }
    }
  }

  NodePtr parseMultiplicative() {
    NodePtr lhs = parseUnary();
    for (;;) {
      if (accept(TokenKind::Star)) {
        lhs = makeBinary(BinaryOp::Mul, std::move(lhs), parseUnary());
      } else if (accept(TokenKind::Slash)) {
        lhs = makeBinary(BinaryOp::Div, std::move(lhs), parseUnary());
      } else {
        return lhs;
      }
    }
  }

  NodePtr parseUnary() {
    if (accept(TokenKind::Not)) {
      auto node = std::make_unique<Node>();
      node->kind = Node::Kind::Unary;
      node->unaryOp = UnaryOp::Not;
      node->lhs = parseUnary();
      return node;
    }
    if (accept(TokenKind::Minus)) {
      auto node = std::make_unique<Node>();
      node->kind = Node::Kind::Unary;
      node->unaryOp = UnaryOp::Negate;
      node->lhs = parseUnary();
      return node;
    }
    return parsePrimary();
  }

  NodePtr parsePrimary() {
    const Token tok = cur();
    if (accept(TokenKind::Number)) {
      auto node = std::make_unique<Node>();
      node->kind = Node::Kind::Literal;
      node->literal = Value::number(tok.number);
      return node;
    }
    if (accept(TokenKind::String)) {
      ast_.stringPool.push_back(std::make_unique<std::string>(tok.text));
      auto node = std::make_unique<Node>();
      node->kind = Node::Kind::Literal;
      node->literal = Value::string(*ast_.stringPool.back());
      return node;
    }
    if (accept(TokenKind::True) || (tok.kind == TokenKind::False && accept(TokenKind::False))) {
      auto node = std::make_unique<Node>();
      node->kind = Node::Kind::Literal;
      node->literal = Value::boolean(tok.kind == TokenKind::True);
      return node;
    }
    if (accept(TokenKind::LParen)) {
      NodePtr inner = parseOr();
      expect(TokenKind::RParen);
      return inner;
    }
    if (accept(TokenKind::Identifier)) {
      if (accept(TokenKind::Dot)) {
        const Token attrTok = cur();
        expect(TokenKind::Identifier);
        const auto object = objectFromName(tok.text);
        if (!object) {
          throw SyntaxError("unknown object '" + std::string(tok.text) +
                                "' (expected vEdge, rEdge, vSource, vTarget, "
                                "rSource, rTarget, vNode, or rNode)",
                            tok.offset);
        }
        auto node = std::make_unique<Node>();
        node->kind = Node::Kind::AttrRef;
        node->object = *object;
        node->attr = graph::attrId(attrTok.text);
        return node;
      }
      if (accept(TokenKind::LParen)) {
        const auto builtin = builtinFromName(tok.text);
        if (!builtin) {
          throw SyntaxError("unknown function '" + std::string(tok.text) + "'", tok.offset);
        }
        auto node = std::make_unique<Node>();
        node->kind = Node::Kind::Call;
        node->builtin = *builtin;
        if (cur().kind != TokenKind::RParen) {
          node->args.push_back(parseOr());
          while (accept(TokenKind::Comma)) node->args.push_back(parseOr());
        }
        expect(TokenKind::RParen);
        if (node->args.size() != builtinArity(*builtin)) {
          throw SyntaxError(std::string(builtinName(*builtin)) + " expects " +
                                std::to_string(builtinArity(*builtin)) + " argument(s), got " +
                                std::to_string(node->args.size()),
                            tok.offset);
        }
        return node;
      }
      throw SyntaxError("bare identifier '" + std::string(tok.text) +
                            "' (did you mean object.attribute or a function call?)",
                        tok.offset);
    }
    throw SyntaxError("expected an expression, found " +
                          std::string(tokenKindName(tok.kind)),
                      tok.offset);
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  Ast ast_;
};

}  // namespace

Ast parse(std::string_view source) { return Parser(source).run(); }

}  // namespace netembed::expr
