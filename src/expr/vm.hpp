#pragma once
// Stack VM executing compiled constraint programs.

#include "expr/compile.hpp"

namespace netembed::expr {

/// Execute `program` under `ctx`. The final value is always Bool (the
/// compiler appends a truthiness coercion); returns its value.
[[nodiscard]] bool run(const Program& program, const EvalContext& ctx);

/// As `run` but returns the raw final Value (used by tests).
[[nodiscard]] Value runValue(const Program& program, const EvalContext& ctx);

}  // namespace netembed::expr
