#include "expr/value.hpp"

#include <cmath>
#include <cstdio>

namespace netembed::expr {

Value Value::fromAttr(const graph::AttrValue& a) noexcept {
  switch (a.type()) {
    case graph::AttrType::Undefined: return Value::undefined();
    case graph::AttrType::Bool: return Value::boolean(a.asBool());
    case graph::AttrType::Int: return Value::number(static_cast<double>(a.asInt()));
    case graph::AttrType::Double: return Value::number(a.asDouble());
    case graph::AttrType::String: return Value::string(a.asString());
  }
  return Value::undefined();
}

std::string Value::toString() const {
  switch (kind_) {
    case ValueKind::Undefined: return "undefined";
    case ValueKind::Bool: return asBool() ? "true" : "false";
    case ValueKind::Number: {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%g", num_);
      return buf;
    }
    case ValueKind::String: return std::string(str_);
  }
  return "?";
}

Value valueEquals(const Value& a, const Value& b) noexcept {
  if (a.isUndefined() || b.isUndefined()) return Value::undefined();
  if (a.kind() != b.kind()) return Value::boolean(false);
  switch (a.kind()) {
    case ValueKind::Bool: return Value::boolean(a.asBool() == b.asBool());
    case ValueKind::Number: return Value::boolean(a.asNumber() == b.asNumber());
    case ValueKind::String: return Value::boolean(a.asString() == b.asString());
    default: return Value::undefined();
  }
}

Value valueCompare(const Value& a, const Value& b, int op) noexcept {
  if (a.isUndefined() || b.isUndefined()) return Value::undefined();
  int cmp = 0;
  if (a.isNumber() && b.isNumber()) {
    const double x = a.asNumber(), y = b.asNumber();
    if (std::isnan(x) || std::isnan(y)) return Value::undefined();
    cmp = x < y ? -1 : (x > y ? 1 : 0);
  } else if (a.isString() && b.isString()) {
    const int c = a.asString().compare(b.asString());
    cmp = c < 0 ? -1 : (c > 0 ? 1 : 0);
  } else {
    return Value::undefined();  // bool/mixed types are not ordered
  }
  switch (op) {
    case 0: return Value::boolean(cmp < 0);
    case 1: return Value::boolean(cmp <= 0);
    case 2: return Value::boolean(cmp > 0);
    case 3: return Value::boolean(cmp >= 0);
    default: return Value::undefined();
  }
}

Value valueArith(const Value& a, const Value& b, char op) noexcept {
  if (!a.isNumber() || !b.isNumber()) return Value::undefined();
  const double x = a.asNumber(), y = b.asNumber();
  switch (op) {
    case '+': return Value::number(x + y);
    case '-': return Value::number(x - y);
    case '*': return Value::number(x * y);
    case '/': return y == 0.0 ? Value::undefined() : Value::number(x / y);
    default: return Value::undefined();
  }
}

Value valueIsBoundTo(const Value& first, const Value& second) noexcept {
  if (first.isUndefined()) return Value::boolean(true);
  if (second.isUndefined()) return Value::boolean(false);
  const Value eq = valueEquals(first, second);
  return eq.isUndefined() ? Value::boolean(false) : eq;
}

}  // namespace netembed::expr
