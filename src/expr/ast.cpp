#include "expr/ast.hpp"

#include <cmath>

namespace netembed::expr {

const char* objectName(ObjectId o) noexcept {
  switch (o) {
    case ObjectId::VEdge: return "vEdge";
    case ObjectId::REdge: return "rEdge";
    case ObjectId::VSource: return "vSource";
    case ObjectId::VTarget: return "vTarget";
    case ObjectId::RSource: return "rSource";
    case ObjectId::RTarget: return "rTarget";
    case ObjectId::VNode: return "vNode";
    case ObjectId::RNode: return "rNode";
  }
  return "?";
}

bool isEdgeObject(ObjectId o) noexcept {
  return o != ObjectId::VNode && o != ObjectId::RNode;
}

bool isNodeObject(ObjectId o) noexcept {
  return o == ObjectId::VNode || o == ObjectId::RNode;
}

const char* builtinName(Builtin b) noexcept {
  switch (b) {
    case Builtin::Abs: return "abs";
    case Builtin::Sqrt: return "sqrt";
    case Builtin::Min: return "min";
    case Builtin::Max: return "max";
    case Builtin::Floor: return "floor";
    case Builtin::Ceil: return "ceil";
    case Builtin::IsBoundTo: return "isBoundTo";
  }
  return "?";
}

std::size_t builtinArity(Builtin b) noexcept {
  switch (b) {
    case Builtin::Abs:
    case Builtin::Sqrt:
    case Builtin::Floor:
    case Builtin::Ceil: return 1;
    case Builtin::Min:
    case Builtin::Max:
    case Builtin::IsBoundTo: return 2;
  }
  return 0;
}

namespace {
void collectObjects(const Node& node, std::uint32_t& mask) {
  switch (node.kind) {
    case Node::Kind::AttrRef:
      mask |= 1u << static_cast<std::uint32_t>(node.object);
      break;
    case Node::Kind::Unary:
      collectObjects(*node.lhs, mask);
      break;
    case Node::Kind::Binary:
      collectObjects(*node.lhs, mask);
      collectObjects(*node.rhs, mask);
      break;
    case Node::Kind::Call:
      for (const NodePtr& a : node.args) collectObjects(*a, mask);
      break;
    case Node::Kind::Literal:
      break;
  }
}

Value callBuiltin(Builtin b, const Value* argv) {
  switch (b) {
    case Builtin::Abs:
      return argv[0].isNumber() ? Value::number(std::fabs(argv[0].asNumber()))
                                : Value::undefined();
    case Builtin::Sqrt:
      return argv[0].isNumber() && argv[0].asNumber() >= 0.0
                 ? Value::number(std::sqrt(argv[0].asNumber()))
                 : Value::undefined();
    case Builtin::Floor:
      return argv[0].isNumber() ? Value::number(std::floor(argv[0].asNumber()))
                                : Value::undefined();
    case Builtin::Ceil:
      return argv[0].isNumber() ? Value::number(std::ceil(argv[0].asNumber()))
                                : Value::undefined();
    case Builtin::Min:
      return argv[0].isNumber() && argv[1].isNumber()
                 ? Value::number(std::fmin(argv[0].asNumber(), argv[1].asNumber()))
                 : Value::undefined();
    case Builtin::Max:
      return argv[0].isNumber() && argv[1].isNumber()
                 ? Value::number(std::fmax(argv[0].asNumber(), argv[1].asNumber()))
                 : Value::undefined();
    case Builtin::IsBoundTo:
      return valueIsBoundTo(argv[0], argv[1]);
  }
  return Value::undefined();
}
}  // namespace

std::uint32_t Ast::objectsUsed() const {
  std::uint32_t mask = 0;
  if (root) collectObjects(*root, mask);
  return mask;
}

Value evalAst(const Node& node, const EvalContext& ctx) {
  switch (node.kind) {
    case Node::Kind::Literal:
      return node.literal;
    case Node::Kind::AttrRef: {
      const graph::AttrMap* attrs = ctx.slot[static_cast<std::size_t>(node.object)];
      if (!attrs) return Value::undefined();
      const graph::AttrValue* v = attrs->get(node.attr);
      return v ? Value::fromAttr(*v) : Value::undefined();
    }
    case Node::Kind::Unary: {
      const Value operand = evalAst(*node.lhs, ctx);
      if (node.unaryOp == UnaryOp::Not) return Value::boolean(!operand.truthy());
      return operand.isNumber() ? Value::number(-operand.asNumber()) : Value::undefined();
    }
    case Node::Kind::Binary: {
      switch (node.binaryOp) {
        case BinaryOp::And: {
          if (!evalAst(*node.lhs, ctx).truthy()) return Value::boolean(false);
          return Value::boolean(evalAst(*node.rhs, ctx).truthy());
        }
        case BinaryOp::Or: {
          if (evalAst(*node.lhs, ctx).truthy()) return Value::boolean(true);
          return Value::boolean(evalAst(*node.rhs, ctx).truthy());
        }
        default: break;
      }
      const Value a = evalAst(*node.lhs, ctx);
      const Value b = evalAst(*node.rhs, ctx);
      switch (node.binaryOp) {
        case BinaryOp::Eq: return valueEquals(a, b);
        case BinaryOp::Ne: {
          const Value eq = valueEquals(a, b);
          return eq.isUndefined() ? eq : Value::boolean(!eq.asBool());
        }
        case BinaryOp::Lt: return valueCompare(a, b, 0);
        case BinaryOp::Le: return valueCompare(a, b, 1);
        case BinaryOp::Gt: return valueCompare(a, b, 2);
        case BinaryOp::Ge: return valueCompare(a, b, 3);
        case BinaryOp::Add: return valueArith(a, b, '+');
        case BinaryOp::Sub: return valueArith(a, b, '-');
        case BinaryOp::Mul: return valueArith(a, b, '*');
        case BinaryOp::Div: return valueArith(a, b, '/');
        default: return Value::undefined();
      }
    }
    case Node::Kind::Call: {
      Value argv[2];
      for (std::size_t i = 0; i < node.args.size() && i < 2; ++i) {
        argv[i] = evalAst(*node.args[i], ctx);
      }
      return callBuiltin(node.builtin, argv);
    }
  }
  return Value::undefined();
}

namespace {
const char* binaryOpText(BinaryOp op) {
  switch (op) {
    case BinaryOp::And: return "&&";
    case BinaryOp::Or: return "||";
    case BinaryOp::Eq: return "==";
    case BinaryOp::Ne: return "!=";
    case BinaryOp::Lt: return "<";
    case BinaryOp::Le: return "<=";
    case BinaryOp::Gt: return ">";
    case BinaryOp::Ge: return ">=";
    case BinaryOp::Add: return "+";
    case BinaryOp::Sub: return "-";
    case BinaryOp::Mul: return "*";
    case BinaryOp::Div: return "/";
  }
  return "?";
}
}  // namespace

std::string toString(const Node& node) {
  switch (node.kind) {
    case Node::Kind::Literal:
      if (node.literal.isString()) return "\"" + std::string(node.literal.asString()) + "\"";
      return node.literal.toString();
    case Node::Kind::AttrRef:
      return std::string(objectName(node.object)) + "." + graph::attrName(node.attr);
    case Node::Kind::Unary:
      return std::string(node.unaryOp == UnaryOp::Not ? "!" : "-") + "(" +
             toString(*node.lhs) + ")";
    case Node::Kind::Binary:
      return "(" + toString(*node.lhs) + " " + binaryOpText(node.binaryOp) + " " +
             toString(*node.rhs) + ")";
    case Node::Kind::Call: {
      std::string out = builtinName(node.builtin);
      out += "(";
      for (std::size_t i = 0; i < node.args.size(); ++i) {
        if (i) out += ", ";
        out += toString(*node.args[i]);
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

}  // namespace netembed::expr
