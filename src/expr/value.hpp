#pragma once
// Runtime values for constraint evaluation.
//
// Semantics for missing data: reading an absent attribute yields Undefined;
// arithmetic and comparisons involving Undefined yield Undefined; Undefined
// is falsy. This makes under-specified queries safe: a constraint touching
// an attribute a network does not carry simply fails to match, it never
// aborts the search. isBoundTo() is the one construct that treats absence
// specially (absent first argument => unconstrained, paper §VI-B).

#include <cstdint>
#include <string>
#include <string_view>

#include "graph/attr_value.hpp"

namespace netembed::expr {

enum class ValueKind : std::uint8_t { Undefined, Bool, Number, String };

/// A small tagged value. Strings are non-owning views into either the
/// compiled program's constant pool or a graph's attribute storage, both of
/// which outlive any evaluation.
class Value {
 public:
  constexpr Value() noexcept : kind_(ValueKind::Undefined), num_(0.0) {}

  [[nodiscard]] static constexpr Value undefined() noexcept { return Value(); }
  [[nodiscard]] static constexpr Value boolean(bool b) noexcept {
    Value v;
    v.kind_ = ValueKind::Bool;
    v.num_ = b ? 1.0 : 0.0;
    return v;
  }
  [[nodiscard]] static constexpr Value number(double d) noexcept {
    Value v;
    v.kind_ = ValueKind::Number;
    v.num_ = d;
    return v;
  }
  [[nodiscard]] static Value string(std::string_view s) noexcept {
    Value v;
    v.kind_ = ValueKind::String;
    v.str_ = s;
    return v;
  }

  /// Convert a graph attribute (Int widens to Number, Bool stays Bool).
  [[nodiscard]] static Value fromAttr(const graph::AttrValue& a) noexcept;

  [[nodiscard]] constexpr ValueKind kind() const noexcept { return kind_; }
  [[nodiscard]] constexpr bool isUndefined() const noexcept {
    return kind_ == ValueKind::Undefined;
  }
  [[nodiscard]] constexpr bool isNumber() const noexcept {
    return kind_ == ValueKind::Number;
  }
  [[nodiscard]] constexpr bool isBool() const noexcept { return kind_ == ValueKind::Bool; }
  [[nodiscard]] constexpr bool isString() const noexcept {
    return kind_ == ValueKind::String;
  }

  [[nodiscard]] constexpr double asNumber() const noexcept { return num_; }
  [[nodiscard]] constexpr bool asBool() const noexcept { return num_ != 0.0; }
  [[nodiscard]] constexpr std::string_view asString() const noexcept { return str_; }

  /// Only Bool(true) is truthy; numbers/strings/undefined are not booleans.
  [[nodiscard]] constexpr bool truthy() const noexcept {
    return kind_ == ValueKind::Bool && num_ != 0.0;
  }

  [[nodiscard]] std::string toString() const;

 private:
  ValueKind kind_;
  double num_;
  std::string_view str_;
};

// Three-valued operations (Undefined propagates).
[[nodiscard]] Value valueEquals(const Value& a, const Value& b) noexcept;
[[nodiscard]] Value valueCompare(const Value& a, const Value& b, int op) noexcept;
// op: 0 '<', 1 '<=', 2 '>', 3 '>='
[[nodiscard]] Value valueArith(const Value& a, const Value& b, char op) noexcept;
// op: '+', '-', '*', '/'

/// isBoundTo(first, second): absent first => true; otherwise equality
/// (absent second => false).
[[nodiscard]] Value valueIsBoundTo(const Value& first, const Value& second) noexcept;

}  // namespace netembed::expr
