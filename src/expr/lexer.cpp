#include "expr/lexer.hpp"

#include <cctype>
#include <cstdlib>

namespace netembed::expr {

std::string_view tokenKindName(TokenKind k) noexcept {
  switch (k) {
    case TokenKind::Identifier: return "identifier";
    case TokenKind::Number: return "number";
    case TokenKind::String: return "string";
    case TokenKind::True: return "'true'";
    case TokenKind::False: return "'false'";
    case TokenKind::AndAnd: return "'&&'";
    case TokenKind::OrOr: return "'||'";
    case TokenKind::Not: return "'!'";
    case TokenKind::Eq: return "'=='";
    case TokenKind::Ne: return "'!='";
    case TokenKind::Lt: return "'<'";
    case TokenKind::Le: return "'<='";
    case TokenKind::Gt: return "'>'";
    case TokenKind::Ge: return "'>='";
    case TokenKind::Plus: return "'+'";
    case TokenKind::Minus: return "'-'";
    case TokenKind::Star: return "'*'";
    case TokenKind::Slash: return "'/'";
    case TokenKind::LParen: return "'('";
    case TokenKind::RParen: return "')'";
    case TokenKind::Comma: return "','";
    case TokenKind::Dot: return "'.'";
    case TokenKind::End: return "end of input";
  }
  return "?";
}

std::vector<Token> tokenize(std::string_view source) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  const auto push = [&](TokenKind kind, std::size_t start, std::size_t len) {
    tokens.push_back({kind, source.substr(start, len), 0.0, start});
  };

  while (i < source.size()) {
    const char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      const std::size_t start = i;
      while (i < source.size() &&
             (std::isalnum(static_cast<unsigned char>(source[i])) || source[i] == '_')) {
        ++i;
      }
      const std::string_view word = source.substr(start, i - start);
      if (word == "true") {
        push(TokenKind::True, start, word.size());
      } else if (word == "false") {
        push(TokenKind::False, start, word.size());
      } else {
        push(TokenKind::Identifier, start, word.size());
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      const std::size_t start = i;
      while (i < source.size() && std::isdigit(static_cast<unsigned char>(source[i]))) ++i;
      if (i < source.size() && source[i] == '.') {
        ++i;
        while (i < source.size() && std::isdigit(static_cast<unsigned char>(source[i]))) ++i;
      }
      if (i < source.size() && (source[i] == 'e' || source[i] == 'E')) {
        std::size_t j = i + 1;
        if (j < source.size() && (source[j] == '+' || source[j] == '-')) ++j;
        if (j < source.size() && std::isdigit(static_cast<unsigned char>(source[j]))) {
          i = j;
          while (i < source.size() && std::isdigit(static_cast<unsigned char>(source[i]))) ++i;
        }
      }
      Token tok{TokenKind::Number, source.substr(start, i - start), 0.0, start};
      tok.number = std::strtod(std::string(tok.text).c_str(), nullptr);
      tokens.push_back(tok);
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      const std::size_t start = ++i;
      while (i < source.size() && source[i] != quote) ++i;
      if (i >= source.size()) throw SyntaxError("unterminated string literal", start - 1);
      push(TokenKind::String, start, i - start);
      ++i;  // closing quote
      continue;
    }
    const std::size_t start = i;
    auto two = [&](char second) {
      return i + 1 < source.size() && source[i + 1] == second;
    };
    switch (c) {
      case '&':
        if (!two('&')) throw SyntaxError("expected '&&'", start);
        push(TokenKind::AndAnd, start, 2);
        i += 2;
        break;
      case '|':
        if (!two('|')) throw SyntaxError("expected '||'", start);
        push(TokenKind::OrOr, start, 2);
        i += 2;
        break;
      case '=':
        if (!two('=')) throw SyntaxError("expected '==' (assignment is not supported)", start);
        push(TokenKind::Eq, start, 2);
        i += 2;
        break;
      case '!':
        if (two('=')) {
          push(TokenKind::Ne, start, 2);
          i += 2;
        } else {
          push(TokenKind::Not, start, 1);
          ++i;
        }
        break;
      case '<':
        if (two('=')) {
          push(TokenKind::Le, start, 2);
          i += 2;
        } else {
          push(TokenKind::Lt, start, 1);
          ++i;
        }
        break;
      case '>':
        if (two('=')) {
          push(TokenKind::Ge, start, 2);
          i += 2;
        } else {
          push(TokenKind::Gt, start, 1);
          ++i;
        }
        break;
      case '+': push(TokenKind::Plus, start, 1); ++i; break;
      case '-': push(TokenKind::Minus, start, 1); ++i; break;
      case '*': push(TokenKind::Star, start, 1); ++i; break;
      case '/': push(TokenKind::Slash, start, 1); ++i; break;
      case '(': push(TokenKind::LParen, start, 1); ++i; break;
      case ')': push(TokenKind::RParen, start, 1); ++i; break;
      case ',': push(TokenKind::Comma, start, 1); ++i; break;
      case '.': push(TokenKind::Dot, start, 1); ++i; break;
      default:
        throw SyntaxError(std::string("unexpected character '") + c + "'", start);
    }
  }
  tokens.push_back({TokenKind::End, source.substr(source.size(), 0), 0.0, source.size()});
  return tokens;
}

}  // namespace netembed::expr
