#include "expr/constraint.hpp"

#include <stdexcept>

#include "expr/parser.hpp"
#include "expr/vm.hpp"

namespace netembed::expr {

Constraint Constraint::parse(std::string_view source) {
  Constraint c;
  c.ast_ = expr::parse(source);
  c.program_ = compile(c.ast_);
  return c;
}

bool Constraint::usesEdgeObjects() const noexcept {
  const std::uint32_t mask = program_.objectsUsed();
  constexpr std::uint32_t edgeMask =
      (1u << static_cast<std::uint32_t>(ObjectId::VEdge)) |
      (1u << static_cast<std::uint32_t>(ObjectId::REdge)) |
      (1u << static_cast<std::uint32_t>(ObjectId::VSource)) |
      (1u << static_cast<std::uint32_t>(ObjectId::VTarget)) |
      (1u << static_cast<std::uint32_t>(ObjectId::RSource)) |
      (1u << static_cast<std::uint32_t>(ObjectId::RTarget));
  return (mask & edgeMask) != 0;
}

bool Constraint::usesNodeObjects() const noexcept {
  const std::uint32_t mask = program_.objectsUsed();
  constexpr std::uint32_t nodeMask =
      (1u << static_cast<std::uint32_t>(ObjectId::VNode)) |
      (1u << static_cast<std::uint32_t>(ObjectId::RNode));
  return (mask & nodeMask) != 0;
}

bool Constraint::evalCtx(const EvalContext& ctx) const {
  if (useInterpreter_) return evalAst(*ast_.root, ctx).truthy();
  return run(program_, ctx);
}

ConstraintSet ConstraintSet::edgeOnly(std::string_view source) {
  return parse(source, {});
}

ConstraintSet ConstraintSet::parse(std::string_view edgeSource,
                                   std::string_view nodeSource) {
  ConstraintSet set;
  if (!edgeSource.empty()) {
    set.edge = Constraint::parse(edgeSource);
    if (set.edge->usesNodeObjects()) {
      throw std::invalid_argument(
          "edge constraint must not reference vNode/rNode (use "
          "vSource/vTarget/rSource/rTarget)");
    }
  }
  if (!nodeSource.empty()) {
    set.node = Constraint::parse(nodeSource);
    if (set.node->usesEdgeObjects()) {
      throw std::invalid_argument(
          "node constraint may only reference vNode and rNode");
    }
  }
  return set;
}

}  // namespace netembed::expr
