#pragma once
// Recursive-descent parser producing an Ast. Grammar (Java precedence,
// paper §VI-B):
//
//   or      := and ('||' and)*
//   and     := equality ('&&' equality)*
//   equality:= relational (('==' | '!=') relational)*
//   relational := additive (('<' | '<=' | '>' | '>=') additive)*
//   additive   := multiplicative (('+' | '-') multiplicative)*
//   multiplicative := unary (('*' | '/') unary)*
//   unary   := ('!' | '-') unary | primary
//   primary := NUMBER | STRING | 'true' | 'false' | '(' or ')'
//            | IDENT '.' IDENT            (object attribute reference)
//            | IDENT '(' args ')'         (builtin call)

#include <string_view>

#include "expr/ast.hpp"
#include "expr/lexer.hpp"

namespace netembed::expr {

/// Parse a complete expression. Throws SyntaxError on malformed input,
/// unknown objects, unknown functions, or arity mismatches.
[[nodiscard]] Ast parse(std::string_view source);

}  // namespace netembed::expr
