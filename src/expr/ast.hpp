#pragma once
// Abstract syntax tree for constraint expressions, plus a reference
// tree-walking evaluator. The bytecode VM (vm.hpp) is the production
// evaluator; the AST interpreter doubles as its differential-testing oracle
// and as the slow leg of the interpreter-vs-VM ablation bench.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "expr/value.hpp"
#include "graph/attr_map.hpp"

namespace netembed::expr {

/// The objects available in expressions (paper Table I, plus the vNode/rNode
/// extension used by node-level constraints).
enum class ObjectId : std::uint8_t {
  VEdge, REdge, VSource, VTarget, RSource, RTarget, VNode, RNode
};
inline constexpr std::size_t kObjectCount = 8;

[[nodiscard]] const char* objectName(ObjectId o) noexcept;
[[nodiscard]] bool isEdgeObject(ObjectId o) noexcept;  // Table I objects
[[nodiscard]] bool isNodeObject(ObjectId o) noexcept;  // vNode / rNode

enum class Builtin : std::uint8_t { Abs, Sqrt, Min, Max, Floor, Ceil, IsBoundTo };

[[nodiscard]] const char* builtinName(Builtin b) noexcept;
[[nodiscard]] std::size_t builtinArity(Builtin b) noexcept;

enum class UnaryOp : std::uint8_t { Not, Negate };
enum class BinaryOp : std::uint8_t {
  And, Or, Eq, Ne, Lt, Le, Gt, Ge, Add, Sub, Mul, Div
};

struct Node;
using NodePtr = std::unique_ptr<Node>;

struct Node {
  enum class Kind : std::uint8_t { Literal, AttrRef, Unary, Binary, Call } kind;

  // Literal
  Value literal;            // strings view into Ast::stringPool
  // AttrRef
  ObjectId object{};
  graph::AttrId attr{};
  // Unary / Binary
  UnaryOp unaryOp{};
  BinaryOp binaryOp{};
  NodePtr lhs;              // also the Unary operand
  NodePtr rhs;
  // Call
  Builtin builtin{};
  std::vector<NodePtr> args;
};

/// A parsed expression: root node plus owned string literals.
struct Ast {
  NodePtr root;
  std::vector<std::unique_ptr<std::string>> stringPool;  // stable addresses
  std::string source;

  /// Bitmask over ObjectId of objects the expression references.
  [[nodiscard]] std::uint32_t objectsUsed() const;
};

/// Attribute-map bindings for one evaluation. Unbound slots are nullptr;
/// attribute reads through them yield Undefined.
struct EvalContext {
  const graph::AttrMap* slot[kObjectCount] = {};

  void bind(ObjectId o, const graph::AttrMap& attrs) noexcept {
    slot[static_cast<std::size_t>(o)] = &attrs;
  }
};

/// Reference evaluator (recursive tree walk, short-circuiting && / ||).
[[nodiscard]] Value evalAst(const Node& node, const EvalContext& ctx);

/// Render back to (normalized) source text, for diagnostics.
[[nodiscard]] std::string toString(const Node& node);

}  // namespace netembed::expr
