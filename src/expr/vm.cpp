#include "expr/vm.hpp"

#include <cmath>

namespace netembed::expr {

Value runValue(const Program& program, const EvalContext& ctx) {
  // Constraint expressions are tiny; 32 slots comfortably covers any
  // realistic nesting (maxStackDepth is validated below just in case).
  Value fixedStack[32];
  std::vector<Value> heapStack;
  Value* stack = fixedStack;
  if (program.maxStackDepth() > 32) {
    heapStack.resize(program.maxStackDepth());
    stack = heapStack.data();
  }
  std::size_t top = 0;  // next free slot

  const std::vector<Instr>& code = program.code();
  const std::vector<Value>& constants = program.constants();

  std::size_t pc = 0;
  while (pc < code.size()) {
    const Instr& instr = code[pc];
    switch (instr.op) {
      case OpCode::PushConst:
        stack[top++] = constants[instr.a];
        ++pc;
        break;
      case OpCode::PushAttr: {
        const graph::AttrMap* attrs = ctx.slot[instr.a];
        if (attrs) {
          const graph::AttrValue* v = attrs->get(instr.b);
          stack[top++] = v ? Value::fromAttr(*v) : Value::undefined();
        } else {
          stack[top++] = Value::undefined();
        }
        ++pc;
        break;
      }
      case OpCode::PushTrue:
        stack[top++] = Value::boolean(true);
        ++pc;
        break;
      case OpCode::PushFalse:
        stack[top++] = Value::boolean(false);
        ++pc;
        break;
      case OpCode::Not:
        stack[top - 1] = Value::boolean(!stack[top - 1].truthy());
        ++pc;
        break;
      case OpCode::Negate:
        stack[top - 1] = stack[top - 1].isNumber()
                             ? Value::number(-stack[top - 1].asNumber())
                             : Value::undefined();
        ++pc;
        break;
      case OpCode::Truthy:
        stack[top - 1] = Value::boolean(stack[top - 1].truthy());
        ++pc;
        break;
      case OpCode::Eq:
        --top;
        stack[top - 1] = valueEquals(stack[top - 1], stack[top]);
        ++pc;
        break;
      case OpCode::Ne: {
        --top;
        const Value eq = valueEquals(stack[top - 1], stack[top]);
        stack[top - 1] = eq.isUndefined() ? eq : Value::boolean(!eq.asBool());
        ++pc;
        break;
      }
      case OpCode::Lt:
        --top;
        stack[top - 1] = valueCompare(stack[top - 1], stack[top], 0);
        ++pc;
        break;
      case OpCode::Le:
        --top;
        stack[top - 1] = valueCompare(stack[top - 1], stack[top], 1);
        ++pc;
        break;
      case OpCode::Gt:
        --top;
        stack[top - 1] = valueCompare(stack[top - 1], stack[top], 2);
        ++pc;
        break;
      case OpCode::Ge:
        --top;
        stack[top - 1] = valueCompare(stack[top - 1], stack[top], 3);
        ++pc;
        break;
      case OpCode::Add:
        --top;
        stack[top - 1] = valueArith(stack[top - 1], stack[top], '+');
        ++pc;
        break;
      case OpCode::Sub:
        --top;
        stack[top - 1] = valueArith(stack[top - 1], stack[top], '-');
        ++pc;
        break;
      case OpCode::Mul:
        --top;
        stack[top - 1] = valueArith(stack[top - 1], stack[top], '*');
        ++pc;
        break;
      case OpCode::Div:
        --top;
        stack[top - 1] = valueArith(stack[top - 1], stack[top], '/');
        ++pc;
        break;
      case OpCode::Abs:
        stack[top - 1] = stack[top - 1].isNumber()
                             ? Value::number(std::fabs(stack[top - 1].asNumber()))
                             : Value::undefined();
        ++pc;
        break;
      case OpCode::Sqrt: {
        const Value& v = stack[top - 1];
        stack[top - 1] = v.isNumber() && v.asNumber() >= 0.0
                             ? Value::number(std::sqrt(v.asNumber()))
                             : Value::undefined();
        ++pc;
        break;
      }
      case OpCode::Floor:
        stack[top - 1] = stack[top - 1].isNumber()
                             ? Value::number(std::floor(stack[top - 1].asNumber()))
                             : Value::undefined();
        ++pc;
        break;
      case OpCode::Ceil:
        stack[top - 1] = stack[top - 1].isNumber()
                             ? Value::number(std::ceil(stack[top - 1].asNumber()))
                             : Value::undefined();
        ++pc;
        break;
      case OpCode::Min:
        --top;
        stack[top - 1] = (stack[top - 1].isNumber() && stack[top].isNumber())
                             ? Value::number(std::fmin(stack[top - 1].asNumber(),
                                                       stack[top].asNumber()))
                             : Value::undefined();
        ++pc;
        break;
      case OpCode::Max:
        --top;
        stack[top - 1] = (stack[top - 1].isNumber() && stack[top].isNumber())
                             ? Value::number(std::fmax(stack[top - 1].asNumber(),
                                                       stack[top].asNumber()))
                             : Value::undefined();
        ++pc;
        break;
      case OpCode::IsBoundTo:
        --top;
        stack[top - 1] = valueIsBoundTo(stack[top - 1], stack[top]);
        ++pc;
        break;
      case OpCode::JumpIfFalse: {
        const Value v = stack[--top];
        pc = v.truthy() ? pc + 1 : instr.a;
        break;
      }
      case OpCode::JumpIfTrue: {
        const Value v = stack[--top];
        pc = v.truthy() ? instr.a : pc + 1;
        break;
      }
      case OpCode::Jump:
        pc = instr.a;
        break;
    }
  }
  return stack[0];
}

bool run(const Program& program, const EvalContext& ctx) {
  return runValue(program, ctx).truthy();
}

}  // namespace netembed::expr
