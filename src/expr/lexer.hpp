#pragma once
// Tokenizer for the NETEMBED constraint expression language (paper §VI-B):
// Java-style boolean expressions over the objects of Table I.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace netembed::expr {

enum class TokenKind : std::uint8_t {
  Identifier,   // vEdge, avgDelay, isBoundTo, ...
  Number,       // 0.90, 100, 1e-3
  String,       // "linux-2.6" or 'linux-2.6'
  True, False,  // keywords
  AndAnd, OrOr, Not,
  Eq, Ne, Lt, Le, Gt, Ge,
  Plus, Minus, Star, Slash,
  LParen, RParen, Comma, Dot,
  End
};

[[nodiscard]] std::string_view tokenKindName(TokenKind k) noexcept;

struct Token {
  TokenKind kind = TokenKind::End;
  std::string_view text;   // view into the source
  double number = 0.0;     // valid for Number
  std::size_t offset = 0;  // byte offset into the source (for diagnostics)
};

/// Error in lexing or parsing, carrying the source offset.
class SyntaxError : public std::runtime_error {
 public:
  SyntaxError(const std::string& message, std::size_t offset)
      : std::runtime_error(message + " (at offset " + std::to_string(offset) + ")"),
        offset_(offset) {}
  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

/// Tokenize the whole source; the final token is always End.
/// The source string must outlive the tokens (text fields are views).
[[nodiscard]] std::vector<Token> tokenize(std::string_view source);

}  // namespace netembed::expr
