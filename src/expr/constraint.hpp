#pragma once
// The public face of the constraint language: parse once, evaluate millions
// of times against (query, host) element pairs.

#include <optional>
#include <string>
#include <string_view>

#include "expr/ast.hpp"
#include "expr/compile.hpp"
#include "expr/lexer.hpp"  // SyntaxError is part of parse()'s contract
#include "graph/graph.hpp"

namespace netembed::expr {

/// A parsed + compiled constraint expression.
///
/// Edge constraints are evaluated per (query-edge, host-edge) pair with the
/// Table-I objects bound to the *orientation in which the edges are used by
/// the mapping*: vSource/rSource are the query/host nodes at the same end.
/// Node constraints use vNode/rNode only.
class Constraint {
 public:
  /// Parse and compile. Throws SyntaxError on malformed source.
  [[nodiscard]] static Constraint parse(std::string_view source);

  [[nodiscard]] const std::string& source() const noexcept { return ast_.source; }
  [[nodiscard]] const Program& program() const noexcept { return program_; }
  [[nodiscard]] const Ast& ast() const noexcept { return ast_; }

  [[nodiscard]] bool usesEdgeObjects() const noexcept;
  [[nodiscard]] bool usesNodeObjects() const noexcept;

  /// Evaluate against an oriented edge pair:
  ///   query edge qe used from qa to qb, host edge re used from ra to rb.
  [[nodiscard]] bool evalEdgePair(const graph::Graph& query, graph::EdgeId qe,
                                  graph::NodeId qa, graph::NodeId qb,
                                  const graph::Graph& host, graph::EdgeId re,
                                  graph::NodeId ra, graph::NodeId rb) const {
    EvalContext ctx;
    ctx.bind(ObjectId::VEdge, query.edgeAttrs(qe));
    ctx.bind(ObjectId::REdge, host.edgeAttrs(re));
    ctx.bind(ObjectId::VSource, query.nodeAttrs(qa));
    ctx.bind(ObjectId::VTarget, query.nodeAttrs(qb));
    ctx.bind(ObjectId::RSource, host.nodeAttrs(ra));
    ctx.bind(ObjectId::RTarget, host.nodeAttrs(rb));
    return evalCtx(ctx);
  }

  /// Evaluate against a (query-node, host-node) pair (vNode / rNode objects).
  [[nodiscard]] bool evalNodePair(const graph::Graph& query, graph::NodeId qn,
                                  const graph::Graph& host, graph::NodeId rn) const {
    EvalContext ctx;
    ctx.bind(ObjectId::VNode, query.nodeAttrs(qn));
    ctx.bind(ObjectId::RNode, host.nodeAttrs(rn));
    return evalCtx(ctx);
  }

  [[nodiscard]] bool evalCtx(const EvalContext& ctx) const;

  /// When true, the reference AST interpreter is used instead of the VM
  /// (ablation hook; also exercised by differential tests).
  void setUseInterpreter(bool on) noexcept { useInterpreter_ = on; }
  [[nodiscard]] bool usingInterpreter() const noexcept { return useInterpreter_; }

 private:
  Constraint() = default;
  Ast ast_;
  Program program_;
  bool useInterpreter_ = false;
};

/// The full constraint specification of a query: an optional edge expression
/// (paper's constraint expression) and an optional node expression
/// (extension). Absent expressions are unconstrained (always true).
struct ConstraintSet {
  std::optional<Constraint> edge;
  std::optional<Constraint> node;

  /// Parse an edge-level constraint only; validates object usage.
  [[nodiscard]] static ConstraintSet edgeOnly(std::string_view source);

  /// Parse both levels; either may be empty ("" => unconstrained).
  [[nodiscard]] static ConstraintSet parse(std::string_view edgeSource,
                                           std::string_view nodeSource);

  /// Topology-only matching (subgraph isomorphism, no attribute constraints).
  [[nodiscard]] static ConstraintSet none() { return ConstraintSet{}; }
};

}  // namespace netembed::expr
