// Microbenchmarks for the graph substrate: construction, edge lookup,
// adjacency iteration, Dijkstra — the operations every engine leans on.

#include <benchmark/benchmark.h>

#include "graph/algorithms.hpp"
#include "graph/graph.hpp"
#include "topo/brite.hpp"
#include "util/rng.hpp"

namespace {

using namespace netembed;

graph::Graph testGraph(std::size_t n) {
  topo::BriteOptions options;
  options.nodes = n;
  options.m = 2;
  options.seed = 1;
  return topo::brite(options);
}

void BM_BuildBaGraph(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const graph::Graph g = testGraph(n);
    benchmark::DoNotOptimize(g.edgeCount());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BuildBaGraph)->Arg(100)->Arg(1000);

void BM_FindEdgeHit(benchmark::State& state) {
  const graph::Graph g = testGraph(1000);
  util::Rng rng(3);
  std::vector<std::pair<graph::NodeId, graph::NodeId>> pairs;
  for (int i = 0; i < 1024; ++i) {
    const auto e = static_cast<graph::EdgeId>(rng.index(g.edgeCount()));
    pairs.emplace_back(g.edgeSource(e), g.edgeTarget(e));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [u, v] = pairs[i++ & 1023];
    benchmark::DoNotOptimize(g.findEdge(u, v));
  }
}
BENCHMARK(BM_FindEdgeHit);

void BM_FindEdgeMiss(benchmark::State& state) {
  const graph::Graph g = testGraph(1000);
  util::Rng rng(4);
  std::vector<std::pair<graph::NodeId, graph::NodeId>> pairs;
  while (pairs.size() < 1024) {
    const auto u = static_cast<graph::NodeId>(rng.index(g.nodeCount()));
    const auto v = static_cast<graph::NodeId>(rng.index(g.nodeCount()));
    if (u != v && !g.hasEdge(u, v)) pairs.emplace_back(u, v);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [u, v] = pairs[i++ & 1023];
    benchmark::DoNotOptimize(g.findEdge(u, v));
  }
}
BENCHMARK(BM_FindEdgeMiss);

void BM_AdjacencyScan(benchmark::State& state) {
  const graph::Graph g = testGraph(1000);
  for (auto _ : state) {
    std::size_t total = 0;
    for (graph::NodeId n = 0; n < g.nodeCount(); ++n) {
      for (const graph::Neighbor& nb : g.neighbors(n)) total += nb.node;
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(2 * g.edgeCount()));
}
BENCHMARK(BM_AdjacencyScan);

void BM_Dijkstra(benchmark::State& state) {
  const graph::Graph g = testGraph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const auto sp = graph::dijkstra(g, 0, [&](graph::EdgeId e) {
      return g.edgeAttrs(e).getDouble("delay", 1.0);
    });
    benchmark::DoNotOptimize(sp.distance.back());
  }
}
BENCHMARK(BM_Dijkstra)->Arg(300)->Arg(1000);

void BM_AttrLookup(benchmark::State& state) {
  const graph::Graph g = testGraph(100);
  const graph::AttrId id = graph::attrId("avgDelay");
  std::size_t i = 0;
  for (auto _ : state) {
    const auto e = static_cast<graph::EdgeId>(i++ % g.edgeCount());
    benchmark::DoNotOptimize(g.edgeAttrs(e).get(id));
  }
}
BENCHMARK(BM_AttrLookup);

}  // namespace

BENCHMARK_MAIN();
