// Figure 9 (a,b): head-to-head comparison of ECF, RWB, LNS on PlanetLab
// subgraph queries — (a) mean time until all matches are found, (b) time
// until the first match.
//
// Expected shape: ECF ~ RWB for all-matches (the stage-1 filters dominate);
// LNS is much slower for all-matches but competitive for first-match.

#include "common.hpp"

using namespace netembed;
using namespace netembed::bench;

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const BenchConfig cfg = BenchConfig::fromArgs(args, 3, 1500);

  const graph::Graph& host = planetlabHost(cfg.seed);
  const auto constraints = expr::ConstraintSet::edgeOnly(topo::delayWindowConstraint());

  std::vector<std::size_t> sizes;
  if (cfg.paper) {
    for (std::size_t n = 20; n <= 200; n += 20) sizes.push_back(n);
  } else {
    sizes = {10, 20, 40, 60};
  }

  util::TablePrinter allTable(
      {"N", "ECF all (ms)", "RWB all (ms)", "LNS all (ms)"});
  util::TablePrinter firstTable(
      {"N", "ECF first (ms)", "RWB first (ms)", "LNS first (ms)"});
  std::vector<std::vector<std::string>> csvRows;

  for (const std::size_t n : sizes) {
    util::RunningStats all[3], first[3];
    for (std::size_t rep = 0; rep < cfg.reps; ++rep) {
      util::Rng rng(util::deriveSeed(cfg.seed, n * 1000 + rep));
      const graph::Graph query = sampledDelayQuery(host, n, 3 * n, 0.02, rng);
      const core::Problem problem(query, host, constraints);

      const core::Algorithm algos[3] = {core::Algorithm::ECF, core::Algorithm::RWB,
                                        core::Algorithm::LNS};
      for (int a = 0; a < 3; ++a) {
        core::SearchOptions allOpts;
        allOpts.timeout = cfg.timeout;
        allOpts.storeLimit = 1;
        allOpts.seed = rep + 1;
        // RWB stops at the first solution unless told otherwise; for the
        // "all matches" panel give it an unbounded budget like ECF/LNS.
        if (algos[a] == core::Algorithm::RWB) {
          allOpts.maxSolutions = static_cast<std::size_t>(-1);
        }
        const auto resultAll = runAlgorithm(algos[a], problem, allOpts);
        all[a].add(resultAll.stats.searchMs);

        core::SearchOptions firstOpts = allOpts;
        firstOpts.maxSolutions = 1;
        const auto resultFirst = runAlgorithm(algos[a], problem, firstOpts);
        first[a].add(resultFirst.stats.searchMs);
      }
    }
    allTable.addRow({std::to_string(n), meanCi(all[0]), meanCi(all[1]), meanCi(all[2])});
    firstTable.addRow(
        {std::to_string(n), meanCi(first[0]), meanCi(first[1]), meanCi(first[2])});
    csvRows.push_back({std::to_string(n), util::CsvWriter::field(all[0].mean()),
                       util::CsvWriter::field(all[1].mean()),
                       util::CsvWriter::field(all[2].mean()),
                       util::CsvWriter::field(first[0].mean()),
                       util::CsvWriter::field(first[1].mean()),
                       util::CsvWriter::field(first[2].mean())});
  }

  emit("Figure 9a: mean time until ALL matches (PlanetLab)", allTable, {}, {}, false);
  emit("Figure 9b: time until FIRST match (PlanetLab)", firstTable, csvRows,
       {"n", "ecf_all_ms", "rwb_all_ms", "lns_all_ms", "ecf_first_ms", "rwb_first_ms",
        "lns_first_ms"},
       cfg.csv);
  return 0;
}
