// Ablation: Lemma 1 static ordering on/off.
//
// ECF sorts query nodes by ascending candidate count before descending the
// permutation tree; Lemma 1 proves this minimizes the tree. This bench
// measures how much that buys on PlanetLab subgraph queries, in both tree
// nodes visited and wall time.

#include "common.hpp"

using namespace netembed;
using namespace netembed::bench;

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const BenchConfig cfg = BenchConfig::fromArgs(args, 3, 2000);

  const graph::Graph& host = planetlabHost(cfg.seed);
  const auto constraints = expr::ConstraintSet::edgeOnly(topo::delayWindowConstraint());

  std::vector<std::size_t> sizes =
      cfg.paper ? std::vector<std::size_t>{20, 40, 80, 120, 160}
                : std::vector<std::size_t>{10, 20, 40};

  util::TablePrinter table({"N", "ordered ms", "unordered ms", "ordered visits",
                            "unordered visits", "visit ratio"});
  std::vector<std::vector<std::string>> csvRows;

  for (const std::size_t n : sizes) {
    util::RunningStats orderedMs, unorderedMs, orderedVisits, unorderedVisits;
    for (std::size_t rep = 0; rep < cfg.reps; ++rep) {
      util::Rng rng(util::deriveSeed(cfg.seed, n * 1000 + rep));
      const graph::Graph query = sampledDelayQuery(host, n, 3 * n, 0.02, rng);
      const core::Problem problem(query, host, constraints);

      core::SearchOptions on;
      on.timeout = cfg.timeout;
      on.storeLimit = 1;
      core::SearchOptions off = on;
      off.staticOrdering = false;

      const auto a = core::ecfSearch(problem, on);
      const auto b = core::ecfSearch(problem, off);
      orderedMs.add(a.stats.searchMs);
      unorderedMs.add(b.stats.searchMs);
      orderedVisits.add(static_cast<double>(a.stats.treeNodesVisited));
      unorderedVisits.add(static_cast<double>(b.stats.treeNodesVisited));
    }
    const double ratio =
        orderedVisits.mean() > 0 ? unorderedVisits.mean() / orderedVisits.mean() : 0.0;
    table.addRow({std::to_string(n), meanCi(orderedMs), meanCi(unorderedMs),
                  util::formatFixed(orderedVisits.mean(), 0),
                  util::formatFixed(unorderedVisits.mean(), 0),
                  util::formatFixed(ratio, 2)});
    csvRows.push_back({std::to_string(n), util::CsvWriter::field(orderedMs.mean()),
                       util::CsvWriter::field(unorderedMs.mean()),
                       util::CsvWriter::field(orderedVisits.mean()),
                       util::CsvWriter::field(unorderedVisits.mean())});
  }

  emit("Ablation: ECF with vs without Lemma-1 static ordering (PlanetLab)", table,
       csvRows, {"n", "ordered_ms", "unordered_ms", "ordered_visits", "unordered_visits"},
       cfg.csv);
  return 0;
}
