// Dynamic-workload benchmark: replay fixed seeded scenarios through the
// sim::Driver and sweep AsyncServiceOptions::ControlPolicy configurations,
// writing every scorecard to BENCH_sim.json.
//
// Flags:
//   --seed N      root seed for traces, hosts and chaos (default 42)
//   --arrivals N  arrivals per scenario (default 160; --smoke uses 48)
//   --smoke       small/fast variant for CI (same scenarios and gates)
//   --out FILE    JSON output path (default BENCH_sim.json)
//   --check       enforce the acceptance gates (exit 1 on violation):
//                 per-run accounting identity (always enforced — the driver
//                 throws), byte-identical double-run determinism on the
//                 virtual clock, burst-scenario saturation (capacity rejects
//                 happen AND a post-departure arrival is re-accepted), and
//                 chaos-config churn (faults actually fired; the retry
//                 config actually retried).
//
// Scenarios (all virtual-clock, deterministic per seed):
//   poisson_steady  memoryless arrivals at moderate load on a roomy host
//   burst_overload  on/off bursts with long holds on a tight host — the
//                   substrate saturates mid-burst and recovers on departures
//   diurnal_mix     sinusoidal load with interleaved model mutations
//
// Configs swept per scenario:
//   static          all control-plane knobs off (the PR-4-era front end)
//   adaptive_slack  adaptive queue capacity + slack propagation + Low-for-
//                   High preemption
//   chaos_noretry   deterministic fault injection, no retry policy
//   chaos_retry     the same fault schedule with QoS retries and a per-class
//                   retry budget

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "sim/driver.hpp"
#include "sim/metrics.hpp"
#include "sim/trace.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"

using namespace netembed;

namespace {

struct Scenario {
  std::string name;
  graph::Graph host;
  sim::Trace trace;
};

std::vector<Scenario> buildScenarios(std::uint64_t seed, std::size_t arrivals) {
  std::vector<Scenario> out;

  {
    Scenario s;
    s.name = "poisson_steady";
    s.host = sim::capacitatedHost(60, util::deriveSeed(seed, 11), 16.0, 24.0);
    sim::TraceGenOptions g;
    g.seed = util::deriveSeed(seed, 12);
    g.arrivals = arrivals;
    g.arrivalsPerSec = 150.0;
    g.meanHoldMs = 150.0;
    s.trace = sim::poissonTrace(g);
    out.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "burst_overload";
    s.host = sim::capacitatedHost(40, util::deriveSeed(seed, 21), 5.0, 8.0);
    sim::TraceGenOptions g;
    g.seed = util::deriveSeed(seed, 22);
    g.arrivals = arrivals;
    g.arrivalsPerSec = 120.0;
    g.meanHoldMs = 400.0;  // long holds: reservations pile up inside a burst
    g.burstFactor = 8.0;
    g.burstLenMs = 60.0;
    g.gapLenMs = 140.0;
    g.cpuDemandMin = 2.0;
    g.cpuDemandMax = 3.0;
    g.bwDemandMin = 2.0;
    g.bwDemandMax = 4.0;
    g.deadlineShare = 0.0;  // isolate capacity dynamics from deadline churn
    s.trace = sim::burstTrace(g);
    out.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "diurnal_mix";
    s.host = sim::capacitatedHost(60, util::deriveSeed(seed, 31), 12.0, 18.0);
    sim::TraceGenOptions g;
    g.seed = util::deriveSeed(seed, 32);
    g.arrivals = arrivals;
    g.arrivalsPerSec = 180.0;
    g.meanHoldMs = 200.0;
    g.diurnalDepth = 0.9;
    g.diurnalPeriodMs = 500.0;
    g.mutationsPerArrival = 0.3;
    s.trace = sim::diurnalTrace(g);
    out.push_back(std::move(s));
  }
  return out;
}

struct Config {
  std::string name;
  sim::DriverOptions options;
};

std::vector<Config> buildConfigs(std::uint64_t seed) {
  sim::DriverOptions base;
  base.clock = sim::ClockMode::Virtual;
  base.service.workers = 2;
  base.buckets = 8;

  std::vector<Config> out;
  out.push_back({"static", base});

  {
    Config c{"adaptive_slack", base};
    c.options.service.queueCapacity = 64;
    c.options.service.control.queue.adaptiveCapacity = true;
    c.options.service.control.queue.targetQueueDelay = std::chrono::milliseconds(50);
    c.options.service.control.propagateSlack = true;
    c.options.service.control.preemptLowForHigh = true;
    out.push_back(std::move(c));
  }
  {
    Config c{"chaos_noretry", base};
    c.options.chaosEnabled = true;
    c.options.chaosSeed = util::deriveSeed(seed, 99);
    c.options.chaosPlanBuildProb = 0.25;
    c.options.chaosEngineStepProb = 0.0008;
    c.options.chaosMaxFiresPerSite = 12;
    out.push_back(std::move(c));
  }
  {
    Config c{"chaos_retry", base};
    c.options.chaosEnabled = true;
    c.options.chaosSeed = util::deriveSeed(seed, 99);  // same fault schedule
    c.options.chaosPlanBuildProb = 0.25;
    c.options.chaosEngineStepProb = 0.0008;
    c.options.chaosMaxFiresPerSite = 12;
    c.options.retryAttempts = 3;
    c.options.service.control.retryBudgetPerClass = 8;
    out.push_back(std::move(c));
  }
  return out;
}

struct Gate {
  std::string name;
  bool pass;
  std::string detail;
};

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const std::uint64_t seed = args.getSeed("seed", 42);
  const bool smoke = args.getBool("smoke");
  const auto arrivals = static_cast<std::size_t>(
      args.getInt("arrivals", smoke ? 48 : 160));
  const std::string outPath = args.getString("out", "BENCH_sim.json");
  const bool check = args.getBool("check");

  const std::vector<Scenario> scenarios = buildScenarios(seed, arrivals);
  const std::vector<Config> configs = buildConfigs(seed);

  std::vector<sim::Scorecard> cards;
  for (const Scenario& sc : scenarios) {
    for (const Config& cf : configs) {
      sim::Driver driver(sc.host, cf.options);
      cards.push_back(driver.run(sc.trace, sc.name, cf.name, seed));
      cards.back().printTable(std::cout);
      std::cout << '\n';
    }
  }

  // Determinism self-check: the virtual clock promises byte-identical
  // scorecards per seed — re-run one scenario/config pair from scratch and
  // compare serialized cards.
  bool deterministic = false;
  {
    sim::Driver a(scenarios[0].host, configs[0].options);
    sim::Driver b(scenarios[0].host, configs[0].options);
    const std::string ja =
        a.run(scenarios[0].trace, scenarios[0].name, configs[0].name, seed).toJson();
    const std::string jb =
        b.run(scenarios[0].trace, scenarios[0].name, configs[0].name, seed).toJson();
    deterministic = ja == jb;
  }

  const auto card = [&](const std::string& scenario,
                        const std::string& config) -> const sim::Scorecard& {
    for (const sim::Scorecard& c : cards) {
      if (c.scenario == scenario && c.config == config) return c;
    }
    throw std::logic_error("missing scorecard " + scenario + "/" + config);
  };

  std::vector<Gate> gates;
  gates.push_back({"virtual-clock determinism (double run, byte-identical)",
                   deterministic, ""});
  {
    const sim::Scorecard& burst = card("burst_overload", "static");
    gates.push_back({"burst_overload saturates (capacity rejects > 0)",
                     burst.rejectedCapacity > 0,
                     "rejected_capacity=" + std::to_string(burst.rejectedCapacity)});
    gates.push_back({"departures release capacity (re-accept after saturation)",
                     burst.reacceptedAfterSaturation, ""});
    gates.push_back({"burst_overload still accepts work",
                     burst.accepted > 0,
                     "accepted=" + std::to_string(burst.accepted)});
  }
  {
    std::uint64_t faults = 0;
    std::uint64_t retries = 0;
    for (const Scenario& sc : scenarios) {
      faults += card(sc.name, "chaos_noretry").churn.faultsInjected;
      retries += card(sc.name, "chaos_retry").churn.transientRetries;
    }
    gates.push_back({"chaos configs injected faults", faults > 0,
                     "faults=" + std::to_string(faults)});
    gates.push_back({"chaos_retry actually retried", retries > 0,
                     "retries=" + std::to_string(retries)});
  }

  util::TablePrinter gateTable({"gate", "status", "detail"});
  bool allPass = true;
  for (const Gate& g : gates) {
    allPass = allPass && g.pass;
    gateTable.addRow({g.name, g.pass ? "PASS" : "FAIL", g.detail});
  }
  gateTable.print(std::cout);

  std::ofstream out(outPath);
  if (!out) {
    std::cerr << "cannot open " << outPath << " for writing\n";
    return 1;
  }
  out << "{\n";
  out << "  \"bench\": \"sim_report\",\n";
  out << "  \"seed\": " << seed << ",\n";
  out << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n";
  out << "  \"arrivals_per_scenario\": " << arrivals << ",\n";
  out << "  \"deterministic\": " << (deterministic ? "true" : "false") << ",\n";
  out << "  \"scorecards\": [\n";
  for (std::size_t i = 0; i < cards.size(); ++i) {
    cards[i].writeJson(out, 4);
    out << (i + 1 < cards.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  std::cout << "\nwrote " << outPath << "\n";

  if (check && !allPass) {
    std::cerr << "sim_report: acceptance gates failed\n";
    return 1;
  }
  return 0;
}
