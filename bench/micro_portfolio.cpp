// micro_portfolio — single-thread vs root-split vs racing-portfolio
// first-match latency on a BRITE-style hosting network.
//
// The portfolio races ECF, RWB and LNS concurrently and cancels the losers
// at the first match; root-split fans ECF's first-depth candidates across
// the thread pool. Expected shape: portfolio tracks the per-instance best
// single engine (plus a small cancellation overhead), and root-split helps
// most when the first feasible subtree is deep in the Lemma-1 root order.

#include "common.hpp"

using namespace netembed;
using namespace netembed::bench;

namespace {

struct Variant {
  const char* name;
  std::function<core::EmbedResult(const core::Problem&, core::SearchOptions)> run;
};

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const BenchConfig cfg = BenchConfig::fromArgs(args, 5, 1500);

  const std::vector<std::size_t> hostSizes =
      cfg.paper ? std::vector<std::size_t>{800, 1500, 2500}
                : std::vector<std::size_t>{300, 600};
  const std::vector<double> queryFractions =
      cfg.paper ? std::vector<double>{0.2, 0.4, 0.6} : std::vector<double>{0.2, 0.4};

  const Variant variants[] = {
      {"ecf", [](const core::Problem& p, core::SearchOptions o) {
         return core::runSearch(core::Algorithm::ECF, p, o);
       }},
      {"rwb", [](const core::Problem& p, core::SearchOptions o) {
         return core::runSearch(core::Algorithm::RWB, p, o);
       }},
      {"lns", [](const core::Problem& p, core::SearchOptions o) {
         return core::runSearch(core::Algorithm::LNS, p, o);
       }},
      {"ecf_split", [](const core::Problem& p, core::SearchOptions o) {
         o.rootSplitThreads = 0;  // all pool threads + the caller
         return core::runSearch(core::Algorithm::ECF, p, o);
       }},
      {"portfolio", [](const core::Problem& p, core::SearchOptions o) {
         return core::portfolioSearch(p, o).result;
       }},
  };
  constexpr std::size_t kVariants = std::size(variants);

  const auto constraints = expr::ConstraintSet::edgeOnly(topo::delayWindowConstraint());
  util::TablePrinter table({"host N", "query N", "ECF (ms)", "RWB (ms)", "LNS (ms)",
                            "ECF-split (ms)", "portfolio (ms)"});
  std::vector<std::vector<std::string>> csvRows;

  for (const std::size_t hostSize : hostSizes) {
    topo::BriteOptions bo;
    bo.nodes = hostSize;
    bo.m = 2;
    bo.seed = util::deriveSeed(cfg.seed, hostSize);
    const graph::Graph host = topo::brite(bo);

    for (const double fraction : queryFractions) {
      const auto queryNodes = static_cast<std::size_t>(fraction * hostSize);
      if (queryNodes < 3) continue;
      util::RunningStats stats[kVariants];
      for (std::size_t rep = 0; rep < cfg.reps; ++rep) {
        util::Rng rng(util::deriveSeed(cfg.seed, hostSize * 271 + queryNodes + rep));
        const graph::Graph query =
            sampledDelayQuery(host, queryNodes, queryNodes * 2, 0.02, rng);
        const core::Problem problem(query, host, constraints);
        for (std::size_t v = 0; v < kVariants; ++v) {
          core::SearchOptions options;
          options.timeout = cfg.timeout;
          options.storeLimit = 1;
          options.maxSolutions = 1;
          options.seed = rep + 1;
          stats[v].add(variants[v].run(problem, options).stats.searchMs);
        }
      }
      std::vector<std::string> row = {std::to_string(hostSize), std::to_string(queryNodes)};
      std::vector<std::string> csvRow = row;
      for (std::size_t v = 0; v < kVariants; ++v) {
        row.push_back(meanCi(stats[v]));
        csvRow.push_back(util::CsvWriter::field(stats[v].mean()));
      }
      table.addRow(row);
      csvRows.push_back(std::move(csvRow));
    }
  }

  emit("micro: first-match latency, single-thread vs root-split vs portfolio", table,
       csvRows, {"host_n", "query_n", "ecf_ms", "rwb_ms", "lns_ms", "ecf_split_ms",
                 "portfolio_ms"},
       cfg.csv);
  return 0;
}
