// Perf trajectory baseline: a fixed instance matrix (sparse PlanetLab-like,
// dense BRITE-like Waxman, clique) timed through filter build, first match
// and capped enumeration, across all three candidate-domain representations
// (CSR-only, the Auto default, forced bitset rows). Medians land in
// BENCH_netembed.json so future PRs can diff against a tracked baseline
// instead of folklore.
//
//   --reps <n>     repetitions per (instance, mode) cell (default 5)
//   --seed <u64>   root seed (default 42)
//   --out <path>   JSON output path (default BENCH_netembed.json)
//   --check        enforce the acceptance thresholds (exit 1 on violation):
//                  >= 4.15x enumeration speedup on brite_dense, >= 2x on
//                  clique, <= 10% regression on the sparse instance, Auto
//                  within 10% of the better of Off/Force everywhere
//                  (build + enumerate total — the density heuristic must
//                  never pick a representation it loses with), >= 1.3x
//                  dynamic-over-static first match on the planted clique,
//                  >= 20x on the mutation scenario's patch-vs-rebuild
//                  medians, and the saturation scenario's overload-control
//                  gates (non-zero preemptions, bounded High-class p99 queue
//                  wait, goodput above collapse)
//   --sat-check    enforce only the saturation scenario's overload-control
//                  gates (implied by --check). These are count- and
//                  bound-based rather than speedup ratios, so they hold on
//                  noisy shared CI runners where the timing gates do not.
//   --sat-requests <n>  saturation scenario request count (default 1200)
//   --shard-check  enforce only the large-host shard gates (implied by
//                  --check): sharded filter build >= 2x the flat build on
//                  the 100k-node host. The skip margin is ~shardCount x, so
//                  2x holds on noisy runners; solution-count equality across
//                  shard configs is checked unconditionally.
//
// A dynamic_order scenario times SearchOptions::ordering Static vs Dynamic
// on a backtrack-heavy planted clique (random per-edge delays on the host
// clique, query windows centered on a sampled embedding — almost every
// branch is a dead end, exactly where smallest-live-domain selection and
// wipeout pruning pay) and on the dense Waxman instance (where backtracking
// is rare and Dynamic's bookkeeping must not cost much).
//
// A mutation-heavy scenario times the live-model update path: a large host
// under 1-node-touch monitoring deltas, comparing {structurally shared
// snapshot copy + FilterPlan::patchOwned} — the service plan cache's actual
// path, which patches in place when the old plan is exclusively owned —
// against the historical {deep host copy + from-scratch build} per update.
//
// A large-host scenario exercises the sharded host model at ROADMAP scale:
// a ~100k-node pod-structured hugeHost with a pod-affinity query, filter
// build + first match timed at shards in {1, 8, 64, hw}, with peak process RSS
// and the filter's per-structure memory breakdown recorded per config. The
// pod constraint pins each query node's stage-0 viability to one shard, so
// the bucketed stage-1 sweep skips every shard pair the query cannot touch
// — the single-core speedup the --shard-check gate enforces.
//
// The binary also cross-checks that all representations — and the patched
// vs rebuilt plans, both orderings, and every shard count — enumerate the
// same number of solutions and exits non-zero otherwise: the perf baseline
// must never be produced by a wrong answer.

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <future>
#include <iostream>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "core/filter.hpp"
#include "core/plan.hpp"
#include "service/async.hpp"
#include "service/model.hpp"
#include "topo/hugehost.hpp"
#include "util/simd.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {

using namespace netembed;

struct ModeTimings {
  double filterBuildMs = 0.0;
  double firstMatchMs = 0.0;   // pure search (build excluded)
  double enumerateMs = 0.0;    // pure search (build excluded)
  std::uint64_t enumerated = 0;
  std::size_t filterEntries = 0;

  /// The heuristic's figure of merit: what one build-then-enumerate cycle
  /// costs under this representation.
  [[nodiscard]] double totalMs() const { return filterBuildMs + enumerateMs; }
};

struct InstanceReport {
  std::string name;
  std::size_t queryNodes = 0;
  std::size_t queryEdges = 0;
  std::size_t hostNodes = 0;
  std::size_t hostEdges = 0;
  std::size_t filterEntries = 0;
  ModeTimings csr;     // BitsetMode::Off
  ModeTimings bitset;  // BitsetMode::Auto (the default)
  ModeTimings force;   // BitsetMode::Force

  [[nodiscard]] double enumerateSpeedup() const {
    return bitset.enumerateMs > 0.0 ? csr.enumerateMs / bitset.enumerateMs : 0.0;
  }
  /// Auto's build+enumerate total over the better of Off/Force — > 1 means
  /// the density heuristic picked a representation it loses with.
  [[nodiscard]] double autoVsBest() const {
    const double best = std::min(csr.totalMs(), force.totalMs());
    return best > 0.0 ? bitset.totalMs() / best : 0.0;
  }
  /// The same gap in absolute time: the check pairs the 10% ratio with this
  /// so sub-millisecond instances can't flunk the heuristic on timer noise.
  [[nodiscard]] double autoGapMs() const {
    return bitset.totalMs() - std::min(csr.totalMs(), force.totalMs());
  }
};

ModeTimings timeMode(const core::Problem& problem, core::BitsetMode mode,
                     std::size_t reps, std::size_t enumerateCap) {
  std::vector<double> build, first, enumerate;
  ModeTimings out;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    core::SearchOptions base;
    base.bitsetMode = mode;
    {
      core::SearchStats stats;
      const auto fm = core::FilterMatrix::build(problem, base, stats);
      build.push_back(stats.filterBuildMs);
      out.filterEntries = fm.totalEntries();
    }
    {
      core::SearchOptions o = base;
      o.maxSolutions = 1;
      o.storeLimit = 1;
      const auto r = core::ecfSearch(problem, o);
      first.push_back(r.stats.searchMs - r.stats.filterBuildMs);
    }
    {
      core::SearchOptions o = base;
      o.maxSolutions = enumerateCap;
      o.storeLimit = 1;
      const auto r = core::ecfSearch(problem, o);
      enumerate.push_back(r.stats.searchMs - r.stats.filterBuildMs);
      out.enumerated = r.solutionCount;
    }
  }
  out.filterBuildMs = util::median(build);
  out.firstMatchMs = util::median(first);
  out.enumerateMs = util::median(enumerate);
  return out;
}

// --- variable-ordering scenario ---------------------------------------------

struct OrderingReport {
  std::string name;
  std::string autoChoice;  // what Ordering::Auto resolves to on this instance
  double staticFirstMs = 0.0;
  double dynamicFirstMs = 0.0;
  double staticEnumerateMs = 0.0;
  double dynamicEnumerateMs = 0.0;
  std::uint64_t enumeratedStatic = 0;
  std::uint64_t enumeratedDynamic = 0;

  [[nodiscard]] double firstMatchSpeedup() const {
    return dynamicFirstMs > 0.0 ? staticFirstMs / dynamicFirstMs : 0.0;
  }
  [[nodiscard]] double enumerateSpeedup() const {
    return dynamicEnumerateMs > 0.0 ? staticEnumerateMs / dynamicEnumerateMs
                                    : 0.0;
  }
};

/// Backtrack-heavy clique instance with a planted embedding and a hidden
/// bottleneck. The host clique gets a random avgDelay per edge; the query
/// clique's windows are centered on the delays of one sampled node subset,
/// wide (+/- looseTol) everywhere except the edges of the last query node,
/// which are moderately tight (+/- tightTol). Per-edge, the tight windows
/// still admit ~2*tightTol candidates per host node, so every stage-1 cell is
/// non-empty and Lemma 1 sees identical viable counts — the static order
/// cannot tell the bottleneck apart and (by the stable tie-break) schedules
/// it last, paying the full loose-clique dead-end tree before each failure
/// surfaces. The *joint* constraint is sharp: after two or three assigned
/// neighbors the bottleneck's live domain collapses, which smallest-domain
/// selection discovers immediately. The planted embedding guarantees
/// feasibility.
std::pair<graph::Graph, graph::Graph> plantedClique(std::size_t hostN,
                                                    std::size_t queryK,
                                                    double looseTol,
                                                    double tightTol,
                                                    std::uint64_t seed) {
  util::Rng rng(seed);
  graph::Graph host = topo::clique(hostN);
  const graph::AttrId avgId = graph::attrId("avgDelay");
  for (graph::EdgeId e = 0; e < host.edgeCount(); ++e) {
    host.edgeAttrs(e).set(avgId, rng.uniform(1.0, 100.0));
  }
  std::vector<graph::NodeId> perm(hostN);
  std::iota(perm.begin(), perm.end(), 0);
  rng.shuffle(perm);

  graph::Graph query = topo::clique(queryK);
  const graph::AttrId minId = graph::attrId("minDelay");
  const graph::AttrId maxId = graph::attrId("maxDelay");
  const graph::NodeId bottleneck = static_cast<graph::NodeId>(queryK - 1);
  for (graph::EdgeId e = 0; e < query.edgeCount(); ++e) {
    const graph::NodeId qa = query.edgeSource(e);
    const graph::NodeId qb = query.edgeTarget(e);
    const double tol = (qa == bottleneck || qb == bottleneck) ? tightTol : looseTol;
    const double d =
        host.edgeAttrs(*host.findEdge(perm[qa], perm[qb])).get(avgId)->asDouble();
    query.edgeAttrs(e).set(minId, d - tol);
    query.edgeAttrs(e).set(maxId, d + tol);
  }
  return {std::move(query), std::move(host)};
}

OrderingReport runOrderingScenario(const std::string& name,
                                   const core::Problem& problem,
                                   std::size_t reps, std::size_t enumerateCap) {
  OrderingReport report;
  report.name = name;
  {
    // Record what the Auto predictor would pick here: the baseline documents
    // the decision the CLI default now makes on each instance shape.
    const auto plan = core::FilterPlan::build(problem, core::SearchOptions{});
    report.autoChoice =
        core::orderingName(core::chooseOrdering(*plan, core::Ordering::Auto));
  }
  std::vector<double> sFirst, dFirst, sEnum, dEnum;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    for (const core::Ordering ordering :
         {core::Ordering::Static, core::Ordering::Dynamic}) {
      const bool dynamic = ordering == core::Ordering::Dynamic;
      core::SearchOptions base;
      base.ordering = ordering;
      {
        core::SearchOptions o = base;
        o.maxSolutions = 1;
        o.storeLimit = 1;
        const auto r = core::ecfSearch(problem, o);
        (dynamic ? dFirst : sFirst)
            .push_back(r.stats.searchMs - r.stats.filterBuildMs);
      }
      {
        core::SearchOptions o = base;
        o.maxSolutions = enumerateCap;
        o.storeLimit = 1;
        const auto r = core::ecfSearch(problem, o);
        (dynamic ? dEnum : sEnum)
            .push_back(r.stats.searchMs - r.stats.filterBuildMs);
        (dynamic ? report.enumeratedDynamic : report.enumeratedStatic) =
            r.solutionCount;
      }
    }
  }
  report.staticFirstMs = util::median(sFirst);
  report.dynamicFirstMs = util::median(dFirst);
  report.staticEnumerateMs = util::median(sEnum);
  report.dynamicEnumerateMs = util::median(dEnum);
  return report;
}

// --- live-model mutation scenario -------------------------------------------

struct MutationReport {
  std::size_t hostNodes = 0;
  std::size_t hostEdges = 0;
  std::size_t queryNodes = 0;
  double fullMs = 0.0;   // deep host copy + from-scratch FilterPlan::build
  double patchMs = 0.0;  // shared snapshot copy + FilterPlan::patchOwned
  std::size_t patchAttempts = 0;     // patchOwned calls made (the scenario reps)
  std::uint64_t inPlacePatches = 0;  // of those, how many ran in place
  std::uint64_t enumeratedFull = 0;
  std::uint64_t enumeratedPatch = 0;

  [[nodiscard]] double speedup() const {
    return patchMs > 0.0 ? fullMs / patchMs : 0.0;
  }
};

/// 1-node-touch monitoring updates against the large PlanetLab host: each
/// rep flips one site's osType (read by the node constraint, so the delta is
/// constraint-relevant and genuinely patchable), then times both update
/// paths from the same base plan. Patching chains rep to rep through
/// patchOwned — exactly what the service plan cache does under a monitoring
/// feed, and because the chained plan is exclusively owned between reps the
/// patches run in place (no structural copy).
MutationReport runMutationScenario(std::uint64_t seed, std::size_t reps,
                                   std::size_t enumerateCap) {
  const graph::Graph& pristine = bench::planetlabHost(seed);
  util::Rng rng(util::deriveSeed(seed, 4));
  const graph::Graph query = bench::sampledDelayQuery(pristine, 18, 30, 0.25, rng);
  const expr::ConstraintSet constraints = expr::ConstraintSet::parse(
      topo::delayWindowConstraint(), "rNode.osType == vNode.osType");
  const core::SearchOptions planOptions;

  MutationReport report;
  report.hostNodes = pristine.nodeCount();
  report.hostEdges = pristine.edgeCount();
  report.queryNodes = query.nodeCount();

  service::NetworkModel model{graph::Graph(pristine)};
  std::shared_ptr<const core::FilterPlan> chainedPlan;
  {
    const graph::Graph baseSnap = model.host();
    chainedPlan = core::FilterPlan::build(
        core::Problem(query, baseSnap, constraints), planOptions);
  }  // the plan holds no graph references; the snapshot can go

  const graph::NodeId touched = 0;
  const std::string originalOs =
      pristine.nodeAttrs(touched).at("osType").asString();

  const std::uint64_t inPlaceBefore = core::filterPlanInPlacePatches();
  std::vector<double> fullTimes, patchTimes;
  graph::Graph patchSnap, fullSnap;
  std::shared_ptr<const core::FilterPlan> rebuiltPlan;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    model.setNodeAttr(touched, "osType",
                      rep % 2 == 0 ? std::string("mutated-os") : originalOs);
    const core::ModelDelta delta = model.lastDelta();
    {
      util::Stopwatch clock;
      graph::Graph snap = model.host();  // structurally shared snapshot
      chainedPlan = core::FilterPlan::patchOwned(
          std::move(chainedPlan), core::Problem(query, snap, constraints),
          planOptions, delta);
      patchTimes.push_back(clock.elapsedMs());
      patchSnap = std::move(snap);
    }
    {
      util::Stopwatch clock;
      graph::Graph snap = model.host().detachedCopy();  // the historical path
      rebuiltPlan = core::FilterPlan::build(
          core::Problem(query, snap, constraints), planOptions);
      fullTimes.push_back(clock.elapsedMs());
      fullSnap = std::move(snap);
    }
  }
  report.fullMs = util::median(fullTimes);
  report.patchMs = util::median(patchTimes);
  report.patchAttempts = reps;
  report.inPlacePatches = core::filterPlanInPlacePatches() - inPlaceBefore;

  // Cross-check: both plans describe the same final model version and must
  // enumerate identical solution counts.
  const auto enumerate = [&](const std::shared_ptr<const core::FilterPlan>& plan,
                             const graph::Graph& host) {
    core::SearchOptions o = planOptions;
    o.maxSolutions = enumerateCap;
    o.storeLimit = 1;
    core::SearchContext context(o);
    context.setPlanBuilder(std::make_shared<core::SharedPlanBuilder>(plan));
    return core::ecfSearch(core::Problem(query, host, constraints), context)
        .solutionCount;
  };
  report.enumeratedPatch = enumerate(chainedPlan, patchSnap);
  report.enumeratedFull = enumerate(rebuiltPlan, fullSnap);
  return report;
}

// --- sharded large-host scaling scenario --------------------------------------

struct ShardConfigReport {
  std::size_t requested = 1;  // SearchOptions::shards as passed
  std::size_t resolved = 1;   // ShardMap's clamped count
  double filterBuildMs = 0.0;
  double firstMatchMs = 0.0;  // pure search (build excluded)
  std::uint64_t enumerated = 0;
  core::FilterMatrix::MemoryBreakdown memory;
  double peakRssMb = 0.0;  // process ru_maxrss after this config (monotone)
};

struct LargeHostReport {
  std::size_t hostNodes = 0;
  std::size_t hostEdges = 0;
  std::size_t queryNodes = 0;
  std::size_t queryEdges = 0;
  std::string autoOrdering;
  std::vector<ShardConfigReport> configs;  // front() is the flat shards=1 run

  /// Flat build over the fastest genuinely-sharded build — the scaling-path
  /// figure of merit. Single-core, so any win is pure bucket skipping.
  [[nodiscard]] double buildSpeedup() const {
    double best = 0.0;
    for (const ShardConfigReport& c : configs) {
      if (c.resolved > 1 && c.filterBuildMs > 0.0) {
        best = best == 0.0 ? c.filterBuildMs : std::min(best, c.filterBuildMs);
      }
    }
    return best > 0.0 ? configs.front().filterBuildMs / best : 0.0;
  }
  [[nodiscard]] bool countsAgree() const {
    for (const ShardConfigReport& c : configs) {
      if (c.enumerated != configs.front().enumerated) return false;
    }
    return true;
  }
};

double processPeakRssMb() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // Linux: ru_maxrss in KiB
}

/// ~100k-node pod-composite host, pod-affinity query. podSize 64 makes pod
/// boundaries coincide with bit-row word boundaries, so every pod lands
/// whole inside one shard and the "vNode.pod == rNode.pod" constraint pins
/// each query node's stage-0 occupancy to exactly one shard — the shape the
/// bucketed stage-1 sweep is built to exploit.
LargeHostReport runLargeHostScenario(std::uint64_t seed, std::size_t reps,
                                     std::size_t enumerateCap) {
  topo::HugeHostOptions ho;
  ho.pods = 1568;  // 1568 * 64 = 100,352 host nodes
  ho.podSize = 64;
  // Dense pods (~1.7M host edges): the flat stage-1 sweep walks every edge
  // per query edge, which is exactly the term sharding deletes — the skip
  // margin the >= 2x gate rides on.
  ho.extraIntraFactor = 24.0;
  ho.trunkChords = 512;
  ho.seed = util::deriveSeed(seed, 6);
  const graph::Graph host = topo::hugeHost(ho);

  // Resample until the query sits in a single pod: induced subgraphs starting
  // near a gateway can leak across a trunk, and a pod-local query is the
  // honest workload for a pod-affinity constraint.
  graph::Graph query;
  const graph::AttrId podId = graph::attrId("pod");
  for (std::uint64_t attempt = 0;; ++attempt) {
    util::Rng rng(util::deriveSeed(seed, 7 + attempt));
    auto sub = topo::sampleConnectedSubgraph(host, 12, 36, rng);
    const std::int64_t pod0 = sub.graph.nodeAttrs(0).get(podId)->asInt();
    bool onePod = true;
    for (graph::NodeId n = 1; n < sub.graph.nodeCount(); ++n) {
      if (sub.graph.nodeAttrs(n).get(podId)->asInt() != pod0) {
        onePod = false;
        break;
      }
    }
    if (!onePod) continue;
    topo::widenDelayWindows(sub.graph, 2.0);
    query = std::move(sub.graph);
    break;
  }
  const expr::ConstraintSet constraints = expr::ConstraintSet::parse(
      topo::delayWindowConstraint(), "vNode.pod == rNode.pod");
  const core::Problem problem(query, host, constraints);

  LargeHostReport report;
  report.hostNodes = host.nodeCount();
  report.hostEdges = host.edgeCount();
  report.queryNodes = query.nodeCount();
  report.queryEdges = query.edgeCount();
  {
    const auto plan = core::FilterPlan::build(problem, core::SearchOptions{});
    report.autoOrdering =
        core::orderingName(core::chooseOrdering(*plan, core::Ordering::Auto));
  }

  std::vector<std::size_t> shardCounts{1, 8, core::ShardMap::kMaxShards,
                                       std::max<std::size_t>(
                                           1, std::thread::hardware_concurrency())};
  std::sort(shardCounts.begin(), shardCounts.end());
  shardCounts.erase(std::unique(shardCounts.begin(), shardCounts.end()),
                    shardCounts.end());

  for (const std::size_t shards : shardCounts) {
    ShardConfigReport cfg;
    cfg.requested = shards;
    std::vector<double> build, first;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      core::SearchOptions base;
      base.shards = shards;
      {
        core::SearchStats stats;
        const auto fm = core::FilterMatrix::build(problem, base, stats);
        build.push_back(stats.filterBuildMs);
        cfg.resolved = fm.shardMap().shardCount();
        cfg.memory = fm.memoryBreakdown();
      }
      {
        core::SearchOptions o = base;
        o.maxSolutions = 1;
        o.storeLimit = 1;
        const auto r = core::ecfSearch(problem, o);
        first.push_back(r.stats.searchMs - r.stats.filterBuildMs);
      }
    }
    {
      core::SearchOptions o;
      o.shards = shards;
      o.maxSolutions = enumerateCap;
      o.storeLimit = 1;
      cfg.enumerated = core::ecfSearch(problem, o).solutionCount;
    }
    cfg.filterBuildMs = util::median(build);
    cfg.firstMatchMs = util::median(first);
    cfg.peakRssMb = processPeakRssMb();
    report.configs.push_back(cfg);
  }
  return report;
}

// --- sustained-saturation control-plane scenario ------------------------------

struct SaturationReport {
  std::size_t submitted = 0;
  std::size_t workers = 0;
  std::size_t done = 0;
  std::size_t rejected = 0;   // refused at admission (Reject/Shed, or a
                              // refused preemption re-queue)
  std::size_t expired = 0;    // admission deadline passed in the queue
  std::size_t preempted = 0;  // resolved with a preempted partial result
  std::size_t other = 0;      // unaccounted terminal states (must stay 0)
  double elapsedMs = 0.0;     // first submit to last resolution
  double meanServiceMs = 0.0; // warmup estimate the pacing derives from
  double admitP50Ms = 0.0;    // submit-call latency, caller side
  double admitP99Ms = 0.0;
  double highWaitP50Ms = 0.0; // scheduler queue wait, High class
  double highWaitP99Ms = 0.0;
  double lowWaitP99Ms = 0.0;
  std::uint64_t preemptionsFired = 0;
  std::uint64_t preemptRequeues = 0;
  std::size_t effectiveCapacity = 0;
  bool accounted = true;

  [[nodiscard]] double goodputPerSec() const {
    return elapsedMs > 0.0 ? static_cast<double>(done) * 1000.0 / elapsedMs
                           : 0.0;
  }
};

/// Sustained 2x overload against the full control plane: adaptive capacity,
/// the low-priority shed watermark, EDF + slack propagation, and Low-class
/// preemption with re-queue — thousands of mixed-tenant, mixed-priority
/// first-match requests paced at twice the measured service rate while a
/// monitoring thread's worth of model mutations bumps the version under the
/// plan cache. The report is the overload-control contract: every submission
/// accounted for exactly once, non-zero preemption activity, and a bounded
/// High-class queue wait while Low absorbs the shedding.
SaturationReport runSaturationScenario(std::size_t requests) {
  // A capped topology-only clique enumeration (K7 into K56, the instance
  // matrix's densest case): the embedding count dwarfs the cap, so every
  // request streams exactly maxSolutions embeddings off a shared stage-1
  // plan and the service time is stable — the warmup estimate the pacing
  // derives from stays honest. (A first-match workload collapses to
  // microseconds once the plan cache is warm, and "2x overload" would be no
  // load at all.)
  const graph::Graph host = topo::clique(56);
  service::EmbedRequest base;
  base.query = topo::clique(7);
  base.options.maxSolutions = 20000;
  base.options.storeLimit = 1;
  base.algorithm = core::Algorithm::ECF;

  service::AsyncServiceOptions options;
  options.workers = 2;
  options.queueCapacity = 16;  // the static bound adaptive capacity replaces
  options.overloadPolicy = util::OverloadPolicy::ShedLowestPriority;
  options.control.queue.adaptiveCapacity = true;
  options.control.queue.targetQueueDelay = std::chrono::milliseconds(50);
  options.control.queue.lowPriorityShedWatermark = 0.75;
  options.control.propagateSlack = true;
  options.control.preemptLowForHigh = true;
  options.control.requeuePreempted = true;
  service::AsyncNetEmbedService svc{graph::Graph(host), options};
  svc.setTenantWeight(1, 3.0);
  svc.setTenantWeight(2, 2.0);
  svc.setTenantWeight(3, 1.0);

  SaturationReport report;
  report.submitted = requests;
  report.workers = svc.workerCount();

  // Warmup: prime the plan cache untimed, then measure the steady-state
  // serial service time the pacing (and the adaptive controller) steer on.
  {
    service::SubmitTicket prime = svc.submit(base);
    (void)prime.get();
    util::Stopwatch clock;
    constexpr std::size_t kWarmup = 8;
    for (std::size_t i = 0; i < kWarmup; ++i) {
      service::SubmitTicket ticket = svc.submit(base);
      (void)ticket.get();
    }
    report.meanServiceMs = clock.elapsedMs() / kWarmup;
  }
  // Offered load = 2x the worker pool's measured completion rate.
  const auto pacing = std::chrono::microseconds(std::clamp<std::int64_t>(
      static_cast<std::int64_t>(report.meanServiceMs * 1000.0 /
                                (2.0 * static_cast<double>(report.workers))),
      50, 5000));

  constexpr service::Priority kPriorities[] = {
      service::Priority::Low, service::Priority::Normal,
      service::Priority::High};
  std::vector<double> admitLatencies;
  admitLatencies.reserve(requests);
  std::vector<service::SubmitTicket> tickets;
  tickets.reserve(requests);

  util::Stopwatch wall;
  for (std::size_t i = 0; i < requests; ++i) {
    service::EmbedRequest request = base;
    request.qos.priority = kPriorities[i % 3];
    request.qos.tenant = 1 + i % 3;
    // Low-class work carries an admission deadline: under overload it either
    // runs soon or expires instead of rotting in the queue; slack propagation
    // converts what is left of the deadline into its compute budget.
    if (request.qos.priority == service::Priority::Low) {
      request.qos.admissionDeadline = std::chrono::milliseconds(300);
    }
    if (i % 7 == 0) {
      request.qos.computeBudget = std::chrono::milliseconds(100);
    }
    if (i % 97 == 0) {  // a monitoring feed's worth of model churn
      const graph::EdgeId e =
          static_cast<graph::EdgeId>((i * 31) % host.edgeCount());
      svc.setEdgeMetric(host.edgeSource(e), host.edgeTarget(e), "monLoad",
                        static_cast<double>(i % 100));
    }
    util::Stopwatch admitClock;
    tickets.push_back(svc.submit(std::move(request)));
    admitLatencies.push_back(admitClock.elapsedMs());
    std::this_thread::sleep_for(pacing);
  }
  svc.drain();

  for (service::SubmitTicket& ticket : tickets) {
    auto& future = ticket.future();
    if (future.wait_for(std::chrono::seconds(120)) !=
        std::future_status::ready) {
      report.accounted = false;  // a lost ticket is the overload-control bug
      ++report.other;
      continue;
    }
    switch (future.get().status) {
      case service::RequestStatus::Done: ++report.done; break;
      case service::RequestStatus::Rejected: ++report.rejected; break;
      case service::RequestStatus::Expired: ++report.expired; break;
      case service::RequestStatus::Preempted: ++report.preempted; break;
      default: ++report.other; break;
    }
  }
  report.elapsedMs = wall.elapsedMs();
  // The accounting identity: every submission resolves exactly one way.
  if (report.done + report.rejected + report.expired + report.preempted !=
          report.submitted ||
      report.other != 0) {
    report.accounted = false;
  }

  report.admitP50Ms = util::quantileNearestRank(admitLatencies, 0.5);
  report.admitP99Ms = util::quantileNearestRank(admitLatencies, 0.99);
  const util::QosScheduler::Stats stats = svc.queueStats();
  report.effectiveCapacity = stats.effectiveCapacity;
  for (const auto& cls : stats.classes) {
    if (cls.priority == static_cast<int>(service::Priority::High)) {
      report.highWaitP50Ms = cls.waitP50Ms;
      report.highWaitP99Ms = cls.waitP99Ms;
    }
    if (cls.priority == static_cast<int>(service::Priority::Low)) {
      report.lowWaitP99Ms = cls.waitP99Ms;
    }
  }
  const auto control = svc.controlStats();
  report.preemptionsFired = control.preemptionsFired;
  report.preemptRequeues = control.preemptRequeues;
  return report;
}

InstanceReport runInstance(const std::string& name, const core::Problem& problem,
                           std::size_t reps, std::size_t enumerateCap) {
  InstanceReport report;
  report.name = name;
  report.queryNodes = problem.query->nodeCount();
  report.queryEdges = problem.query->edgeCount();
  report.hostNodes = problem.host->nodeCount();
  report.hostEdges = problem.host->edgeCount();
  report.csr = timeMode(problem, core::BitsetMode::Off, reps, enumerateCap);
  report.bitset = timeMode(problem, core::BitsetMode::Auto, reps, enumerateCap);
  report.force = timeMode(problem, core::BitsetMode::Force, reps, enumerateCap);
  report.filterEntries = report.csr.filterEntries;
  return report;
}

void writeJson(std::ostream& os, const std::vector<InstanceReport>& reports,
               const std::vector<OrderingReport>& orderings,
               const MutationReport& mutation, const LargeHostReport& large,
               const SaturationReport& sat, std::uint64_t seed,
               std::size_t reps) {
  const auto mode = [&](const ModeTimings& t) {
    os << "{\"filter_build_ms\": " << t.filterBuildMs
       << ", \"first_match_ms\": " << t.firstMatchMs
       << ", \"enumerate_ms\": " << t.enumerateMs
       << ", \"enumerated\": " << t.enumerated << "}";
  };
  os << "{\n  \"bench\": \"netembed_perf_report\",\n"
     << "  \"seed\": " << seed << ",\n  \"reps\": " << reps << ",\n"
     << "  \"simd_isa\": \"" << util::simd::isaName(util::simd::activeIsa())
     << "\",\n"
     << "  \"instances\": [\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const InstanceReport& r = reports[i];
    os << "    {\"name\": \"" << r.name << "\", \"query_nodes\": " << r.queryNodes
       << ", \"query_edges\": " << r.queryEdges << ", \"host_nodes\": " << r.hostNodes
       << ", \"host_edges\": " << r.hostEdges
       << ", \"filter_entries\": " << r.filterEntries << ",\n     \"csr\": ";
    mode(r.csr);
    os << ",\n     \"bitset\": ";
    mode(r.bitset);
    os << ",\n     \"force\": ";
    mode(r.force);
    os << ",\n     \"enumerate_speedup\": " << r.enumerateSpeedup()
       << ", \"auto_vs_best\": " << r.autoVsBest() << "}"
       << (i + 1 < reports.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"dynamic_order\": [\n";
  for (std::size_t i = 0; i < orderings.size(); ++i) {
    const OrderingReport& o = orderings[i];
    os << "    {\"name\": \"" << o.name << "\", \"auto_ordering\": \""
       << o.autoChoice << "\", \"static_first_match_ms\": " << o.staticFirstMs
       << ", \"dynamic_first_match_ms\": " << o.dynamicFirstMs
       << ", \"first_match_speedup\": " << o.firstMatchSpeedup()
       << ",\n     \"static_enumerate_ms\": " << o.staticEnumerateMs
       << ", \"dynamic_enumerate_ms\": " << o.dynamicEnumerateMs
       << ", \"enumerate_speedup\": " << o.enumerateSpeedup()
       << ", \"enumerated\": " << o.enumeratedStatic << "}"
       << (i + 1 < orderings.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"mutation\": {\"host_nodes\": " << mutation.hostNodes
     << ", \"host_edges\": " << mutation.hostEdges
     << ", \"query_nodes\": " << mutation.queryNodes
     << ",\n    \"full_rebuild_ms\": " << mutation.fullMs
     << ", \"patch_ms\": " << mutation.patchMs
     << ", \"patch_speedup\": " << mutation.speedup()
     << ", \"patch_attempts\": " << mutation.patchAttempts
     << ", \"in_place_patches\": " << mutation.inPlacePatches
     << ",\n    \"enumerated_full\": " << mutation.enumeratedFull
     << ", \"enumerated_patch\": " << mutation.enumeratedPatch << "},\n"
     << "  \"large_host\": {\"host_nodes\": " << large.hostNodes
     << ", \"host_edges\": " << large.hostEdges
     << ", \"query_nodes\": " << large.queryNodes
     << ", \"query_edges\": " << large.queryEdges << ", \"auto_ordering\": \""
     << large.autoOrdering
     << "\",\n    \"build_speedup\": " << large.buildSpeedup()
     << ", \"shard_configs\": [\n";
  for (std::size_t i = 0; i < large.configs.size(); ++i) {
    const ShardConfigReport& c = large.configs[i];
    os << "      {\"shards\": " << c.requested
       << ", \"resolved_shards\": " << c.resolved
       << ", \"filter_build_ms\": " << c.filterBuildMs
       << ", \"first_match_ms\": " << c.firstMatchMs
       << ", \"enumerated\": " << c.enumerated
       << ",\n       \"peak_rss_mb\": " << c.peakRssMb
       << ", \"memory\": {\"csr_bytes\": " << c.memory.csrBytes
       << ", \"bit_row_bytes\": " << c.memory.bitRowBytes
       << ", \"viability_bytes\": " << c.memory.viabilityBytes
       << ", \"occupancy_bytes\": " << c.memory.occupancyBytes
       << ", \"total_bytes\": " << c.memory.total() << "}}"
       << (i + 1 < large.configs.size() ? "," : "") << "\n";
  }
  os << "    ]},\n"
     << "  \"saturation\": {\"requests\": " << sat.submitted
     << ", \"workers\": " << sat.workers << ", \"done\": " << sat.done
     << ", \"rejected\": " << sat.rejected << ", \"expired\": " << sat.expired
     << ", \"preempted\": " << sat.preempted
     << ",\n    \"elapsed_ms\": " << sat.elapsedMs
     << ", \"mean_service_ms\": " << sat.meanServiceMs
     << ", \"goodput_per_sec\": " << sat.goodputPerSec()
     << ",\n    \"admit_p50_ms\": " << sat.admitP50Ms
     << ", \"admit_p99_ms\": " << sat.admitP99Ms
     << ", \"high_wait_p50_ms\": " << sat.highWaitP50Ms
     << ", \"high_wait_p99_ms\": " << sat.highWaitP99Ms
     << ", \"low_wait_p99_ms\": " << sat.lowWaitP99Ms
     << ",\n    \"preemptions_fired\": " << sat.preemptionsFired
     << ", \"preempt_requeues\": " << sat.preemptRequeues
     << ", \"effective_capacity\": " << sat.effectiveCapacity << "}\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const std::size_t reps = static_cast<std::size_t>(args.getInt("reps", 5));
  const std::uint64_t seed = args.getSeed("seed", 42);
  const std::string outPath = args.getString("out", "BENCH_netembed.json");
  const bool check = args.getBool("check");
  const bool satCheck = check || args.getBool("sat-check");
  const bool shardCheck = check || args.getBool("shard-check");

  std::vector<InstanceReport> reports;
  std::vector<OrderingReport> orderings;

  // Sparse: the synthetic PlanetLab substrate with tight delay windows AND an
  // isBoundTo-style node constraint (OS match) — filter cells hold a handful
  // of candidates each, the CSR path's home turf and the non-regression
  // guard for the density heuristic.
  {
    const graph::Graph& host = bench::planetlabHost(seed);
    util::Rng rng(util::deriveSeed(seed, 1));
    const graph::Graph query = bench::sampledDelayQuery(host, 18, 30, 0.25, rng);
    const expr::ConstraintSet constraints = expr::ConstraintSet::parse(
        topo::delayWindowConstraint(), "rNode.osType == vNode.osType");
    // A lower enumeration cap than the dense instances: each solution here
    // sits deep in a heavily-pruned tree, so 1500 keeps a rep near 300 ms.
    reports.push_back(runInstance("planetlab_sparse",
                                  core::Problem(query, host, constraints), reps,
                                  1500));
  }

  // Dense BRITE-like: a Waxman topology thick with edges and a widened delay
  // window that lets most of them match — big cells, the word-parallel AND's
  // target workload (fig. 11-13 territory).
  {
    topo::BriteOptions bo;
    bo.nodes = 400;
    bo.model = topo::BriteOptions::Model::Waxman;
    bo.waxmanAlpha = 0.5;
    bo.waxmanBeta = 0.6;
    bo.seed = util::deriveSeed(seed, 2);
    const graph::Graph host = topo::brite(bo);
    util::Rng rng(util::deriveSeed(seed, 3));
    auto sub = topo::sampleConnectedSubgraph(host, 10, 16, rng);
    topo::widenDelayWindows(sub.graph, 2.0);
    const expr::ConstraintSet constraints =
        expr::ConstraintSet::edgeOnly(topo::delayWindowConstraint());
    const core::Problem problem(sub.graph, host, constraints);
    reports.push_back(runInstance("brite_dense", problem, reps, 20000));
    // Low-backtrack control for the ordering scenario: Dynamic's per-
    // assignment bookkeeping must stay near parity where pruning cannot pay.
    orderings.push_back(runOrderingScenario("brite_dense", problem, reps, 20000));
  }

  // Clique: topology-only K7 into K56 (§VII-D) — every cell is all-but-one
  // host node and every depth intersects as many constrainer rows as there
  // are mapped neighbours, the densest domains an instance can produce.
  // Sub-millisecond per cycle, so take extra reps for a stable median.
  {
    const graph::Graph host = topo::clique(56);
    const graph::Graph query = topo::clique(7);
    const expr::ConstraintSet none;
    reports.push_back(runInstance("clique", core::Problem(query, host, none),
                                  std::max<std::size_t>(reps, 7), 20000));
  }

  // Planted clique: the ordering scenario's backtrack-heavy headliner (see
  // plantedClique). First match under the static order means escaping deep
  // dead-end subtrees; dynamic smallest-domain + wipeout pruning cuts them
  // off near the root.
  {
    auto [query, host] =
        plantedClique(96, 8, 17.0, 6.0, util::deriveSeed(seed, 5));
    const expr::ConstraintSet constraints =
        expr::ConstraintSet::edgeOnly(topo::avgDelayWindowConstraint());
    orderings.push_back(runOrderingScenario(
        "clique_planted", core::Problem(query, host, constraints), reps, 20000));
  }

  // ~25 ms per rebuild+patch cycle: extra reps are cheap and keep the ~1 ms
  // patch median out of scheduler noise.
  const MutationReport mutation =
      runMutationScenario(seed, std::max<std::size_t>(reps, 5), 1500);

  // ~100k-node builds run in the 100 ms range: the default reps already cost
  // seconds, so no extra reps beyond what the caller asked for.
  const LargeHostReport largeHost = runLargeHostScenario(seed, reps, 2000);

  const auto satRequests =
      static_cast<std::size_t>(args.getInt("sat-requests", 1200));
  const SaturationReport saturation = runSaturationScenario(satRequests);

  std::cout << "\nactive SIMD ISA: " << util::simd::isaName(util::simd::activeIsa())
            << "\n";

  util::TablePrinter table(
      {"instance", "entries", "build csr", "build auto", "enum csr", "enum auto",
       "enum force", "speedup", "auto/best"});
  for (const InstanceReport& r : reports) {
    table.addRow({r.name, std::to_string(r.filterEntries),
                  util::formatFixed(r.csr.filterBuildMs, 2),
                  util::formatFixed(r.bitset.filterBuildMs, 2),
                  util::formatFixed(r.csr.enumerateMs, 2),
                  util::formatFixed(r.bitset.enumerateMs, 2),
                  util::formatFixed(r.force.enumerateMs, 2),
                  util::formatFixed(r.enumerateSpeedup(), 2) + "x",
                  util::formatFixed(r.autoVsBest(), 2)});
  }
  std::cout << "\n=== perf baseline (median of " << reps << ") ===\n";
  table.print(std::cout);

  util::TablePrinter orderTable({"instance", "auto", "first static",
                                 "first dynamic", "speedup", "enum static",
                                 "enum dynamic", "speedup"});
  for (const OrderingReport& o : orderings) {
    orderTable.addRow({o.name, o.autoChoice, util::formatFixed(o.staticFirstMs, 2),
                       util::formatFixed(o.dynamicFirstMs, 2),
                       util::formatFixed(o.firstMatchSpeedup(), 2) + "x",
                       util::formatFixed(o.staticEnumerateMs, 2),
                       util::formatFixed(o.dynamicEnumerateMs, 2),
                       util::formatFixed(o.enumerateSpeedup(), 2) + "x"});
  }
  std::cout << "\n=== variable ordering: static vs dynamic (median of " << reps
            << ") ===\n";
  orderTable.print(std::cout);

  util::TablePrinter mutationTable({"host", "edges", "full rebuild (ms)",
                                    "patch (ms)", "speedup", "in-place"});
  mutationTable.addRow(
      {std::to_string(mutation.hostNodes), std::to_string(mutation.hostEdges),
       util::formatFixed(mutation.fullMs, 2), util::formatFixed(mutation.patchMs, 2),
       util::formatFixed(mutation.speedup(), 1) + "x",
       std::to_string(mutation.inPlacePatches) + "/" +
           std::to_string(mutation.patchAttempts)});
  std::cout << "\n=== mutation scenario (1-node-touch deltas, median of " << reps
            << ") ===\n";
  mutationTable.print(std::cout);

  util::TablePrinter largeTable({"shards", "resolved", "build (ms)",
                                 "first match (ms)", "enumerated", "filter MB",
                                 "peak RSS MB"});
  for (const ShardConfigReport& c : largeHost.configs) {
    largeTable.addRow(
        {std::to_string(c.requested), std::to_string(c.resolved),
         util::formatFixed(c.filterBuildMs, 2),
         util::formatFixed(c.firstMatchMs, 2), std::to_string(c.enumerated),
         util::formatFixed(static_cast<double>(c.memory.total()) / (1024.0 * 1024.0),
                           1),
         util::formatFixed(c.peakRssMb, 0)});
  }
  std::cout << "\n=== large host (" << largeHost.hostNodes << " nodes, "
            << largeHost.hostEdges << " edges, auto ordering "
            << largeHost.autoOrdering << ", median of " << reps
            << ") ===\n";
  largeTable.print(std::cout);
  std::cout << "sharded build speedup: "
            << util::formatFixed(largeHost.buildSpeedup(), 2) << "x\n";

  util::TablePrinter satTable({"requests", "done", "rejected", "expired",
                               "preempted", "goodput/s", "high p99 (ms)",
                               "low p99 (ms)", "preempts", "cap"});
  satTable.addRow(
      {std::to_string(saturation.submitted), std::to_string(saturation.done),
       std::to_string(saturation.rejected), std::to_string(saturation.expired),
       std::to_string(saturation.preempted),
       util::formatFixed(saturation.goodputPerSec(), 1),
       util::formatFixed(saturation.highWaitP99Ms, 2),
       util::formatFixed(saturation.lowWaitP99Ms, 2),
       std::to_string(saturation.preemptionsFired),
       std::to_string(saturation.effectiveCapacity)});
  std::cout << "\n=== sustained saturation (2x overload, full control plane) ===\n";
  satTable.print(std::cout);

  std::ofstream out(outPath);
  if (!out) {
    std::cerr << "FAIL: cannot open " << outPath << " for writing\n";
    return 1;
  }
  writeJson(out, reports, orderings, mutation, largeHost, saturation, seed, reps);
  out.flush();
  if (!out) {
    std::cerr << "FAIL: short write to " << outPath << "\n";
    return 1;
  }
  std::cout << "wrote " << outPath << "\n";

  bool ok = true;
  for (const InstanceReport& r : reports) {
    if (r.csr.enumerated != r.bitset.enumerated ||
        r.csr.enumerated != r.force.enumerated) {
      std::cerr << "FAIL: " << r.name << " enumerated " << r.csr.enumerated
                << " (csr) vs " << r.bitset.enumerated << " (auto) vs "
                << r.force.enumerated << " (force)\n";
      ok = false;
    }
  }
  for (const OrderingReport& o : orderings) {
    if (o.enumeratedStatic != o.enumeratedDynamic) {
      std::cerr << "FAIL: " << o.name << " enumerated " << o.enumeratedStatic
                << " (static) vs " << o.enumeratedDynamic << " (dynamic)\n";
      ok = false;
    }
  }
  if (mutation.enumeratedFull != mutation.enumeratedPatch) {
    std::cerr << "FAIL: mutation scenario enumerated " << mutation.enumeratedFull
              << " (rebuilt) vs " << mutation.enumeratedPatch << " (patched)\n";
    ok = false;
  }
  // Shard counts are a pure performance knob: every config must see the same
  // solutions. Unconditional, like the bitset-mode cross-check.
  if (!largeHost.countsAgree()) {
    std::cerr << "FAIL: large_host shard configs disagree on solution count:";
    for (const ShardConfigReport& c : largeHost.configs) {
      std::cerr << " shards=" << c.requested << " -> " << c.enumerated;
    }
    std::cerr << "\n";
    ok = false;
  }
  if (shardCheck) {
    if (largeHost.buildSpeedup() < 2.0) {
      std::cerr << "FAIL: large_host sharded build speedup "
                << largeHost.buildSpeedup() << " < 2x\n";
      ok = false;
    }
  }
  // The saturation accounting identity holds unconditionally, like the
  // solution-count cross-checks: a report produced while losing requests is
  // not a perf baseline.
  if (!saturation.accounted) {
    std::cerr << "FAIL: saturation lost requests (done " << saturation.done
              << " + rejected " << saturation.rejected << " + expired "
              << saturation.expired << " + preempted " << saturation.preempted
              << " != submitted " << saturation.submitted << ", or "
              << saturation.other << " unaccounted)\n";
    ok = false;
  }
  if (satCheck) {
    if (saturation.preemptionsFired < 1) {
      std::cerr << "FAIL: saturation fired no preemptions under 2x overload\n";
      ok = false;
    }
    if (saturation.done < saturation.submitted / 10) {
      std::cerr << "FAIL: saturation goodput collapsed (" << saturation.done
                << " done of " << saturation.submitted << ")\n";
      ok = false;
    }
    // 10x the adaptive target keeps the gate CI-robust while still proving
    // the wait is bounded: an uncontrolled queue at this offered load grows
    // its tail into seconds.
    if (saturation.highWaitP99Ms > 500.0) {
      std::cerr << "FAIL: High-class p99 queue wait " << saturation.highWaitP99Ms
                << " ms exceeds the 500 ms overload-control bound\n";
      ok = false;
    }
    if (saturation.effectiveCapacity == 0) {
      std::cerr << "FAIL: adaptive capacity never engaged\n";
      ok = false;
    }
  }
  if (check) {
    if (mutation.speedup() < 20.0) {
      std::cerr << "FAIL: mutation patch speedup " << mutation.speedup()
                << " < 20x\n";
      ok = false;
    }
    for (const InstanceReport& r : reports) {
      const double speedup = r.enumerateSpeedup();
      if (r.name == "planetlab_sparse" && speedup < 0.9) {
        std::cerr << "FAIL: sparse regression > 10% (speedup " << speedup << ")\n";
        ok = false;
      }
      if (r.name == "brite_dense" && speedup < 4.15) {
        std::cerr << "FAIL: brite_dense speedup " << speedup << " < 4.15x\n";
        ok = false;
      }
      if (r.name == "clique" && speedup < 2.0) {
        std::cerr << "FAIL: clique speedup " << speedup << " < 2x\n";
        ok = false;
      }
      // The ratio needs an absolute floor: on sub-millisecond instances a
      // 10% relative gap is inside single-core timer noise.
      if (r.autoVsBest() > 1.10 && r.autoGapMs() > 0.5) {
        std::cerr << "FAIL: " << r.name << " Auto is " << r.autoVsBest()
                  << "x the better of Off/Force (> 1.10 tolerance, gap "
                  << r.autoGapMs() << " ms)\n";
        ok = false;
      }
    }
    for (const OrderingReport& o : orderings) {
      if (o.name == "clique_planted" && o.firstMatchSpeedup() < 1.3) {
        std::cerr << "FAIL: planted-clique dynamic first-match speedup "
                  << o.firstMatchSpeedup() << " < 1.3x\n";
        ok = false;
      }
      // The Auto predictor must capture the planted clique's dynamic win and
      // must not eat Dynamic's bookkeeping overhead on the dense Waxman
      // instance — the two poles the spread threshold was fit between.
      if (o.name == "clique_planted" && o.autoChoice != "dynamic") {
        std::cerr << "FAIL: Auto ordering picked " << o.autoChoice
                  << " on clique_planted (expected dynamic)\n";
        ok = false;
      }
      if (o.name == "brite_dense" && o.autoChoice != "static") {
        std::cerr << "FAIL: Auto ordering picked " << o.autoChoice
                  << " on brite_dense (expected static)\n";
        ok = false;
      }
    }
  }
  return ok ? 0 : 1;
}
