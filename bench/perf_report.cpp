// Perf trajectory baseline: a fixed instance matrix (sparse PlanetLab-like,
// dense BRITE-like Waxman, clique) timed through filter build, first match
// and capped enumeration, in both candidate-domain representations (CSR-only
// vs. the dual CSR/bitset default). Medians land in BENCH_netembed.json so
// future PRs can diff against a tracked baseline instead of folklore.
//
//   --reps <n>     repetitions per (instance, mode) cell (default 5)
//   --seed <u64>   root seed (default 42)
//   --out <path>   JSON output path (default BENCH_netembed.json)
//   --check        enforce the acceptance thresholds: >= 2x enumeration
//                  speedup on the dense instances, <= 10% regression on the
//                  sparse one, and >= 5x on the mutation scenario's
//                  patch-vs-rebuild medians (exit 1 on violation)
//
// Besides the representation matrix, a mutation-heavy scenario times the
// live-model update path: a large host under 1-node-touch monitoring
// deltas, comparing {structurally shared snapshot copy + FilterPlan::patch}
// against the historical {deep host copy + from-scratch build} per update.
//
// The binary also cross-checks that both representations — and the patched
// vs rebuilt plans — enumerate the same number of solutions and exits
// non-zero otherwise: the perf baseline must never be produced by a wrong
// answer.

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/filter.hpp"
#include "core/plan.hpp"
#include "service/model.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {

using namespace netembed;

struct ModeTimings {
  double filterBuildMs = 0.0;
  double firstMatchMs = 0.0;   // pure search (build excluded)
  double enumerateMs = 0.0;    // pure search (build excluded)
  std::uint64_t enumerated = 0;
  std::size_t filterEntries = 0;
};

struct InstanceReport {
  std::string name;
  std::size_t queryNodes = 0;
  std::size_t queryEdges = 0;
  std::size_t hostNodes = 0;
  std::size_t hostEdges = 0;
  std::size_t filterEntries = 0;
  ModeTimings csr;
  ModeTimings bitset;

  [[nodiscard]] double enumerateSpeedup() const {
    return bitset.enumerateMs > 0.0 ? csr.enumerateMs / bitset.enumerateMs : 0.0;
  }
};

ModeTimings timeMode(const core::Problem& problem, core::BitsetMode mode,
                     std::size_t reps, std::size_t enumerateCap) {
  std::vector<double> build, first, enumerate;
  ModeTimings out;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    core::SearchOptions base;
    base.bitsetMode = mode;
    {
      core::SearchStats stats;
      const auto fm = core::FilterMatrix::build(problem, base, stats);
      build.push_back(stats.filterBuildMs);
      out.filterEntries = fm.totalEntries();
    }
    {
      core::SearchOptions o = base;
      o.maxSolutions = 1;
      o.storeLimit = 1;
      const auto r = core::ecfSearch(problem, o);
      first.push_back(r.stats.searchMs - r.stats.filterBuildMs);
    }
    {
      core::SearchOptions o = base;
      o.maxSolutions = enumerateCap;
      o.storeLimit = 1;
      const auto r = core::ecfSearch(problem, o);
      enumerate.push_back(r.stats.searchMs - r.stats.filterBuildMs);
      out.enumerated = r.solutionCount;
    }
  }
  out.filterBuildMs = util::median(build);
  out.firstMatchMs = util::median(first);
  out.enumerateMs = util::median(enumerate);
  return out;
}

struct MutationReport {
  std::size_t hostNodes = 0;
  std::size_t hostEdges = 0;
  std::size_t queryNodes = 0;
  double fullMs = 0.0;   // deep host copy + from-scratch FilterPlan::build
  double patchMs = 0.0;  // shared snapshot copy + FilterPlan::patch
  std::uint64_t enumeratedFull = 0;
  std::uint64_t enumeratedPatch = 0;

  [[nodiscard]] double speedup() const {
    return patchMs > 0.0 ? fullMs / patchMs : 0.0;
  }
};

/// 1-node-touch monitoring updates against the large PlanetLab host: each
/// rep flips one site's osType (read by the node constraint, so the delta is
/// constraint-relevant and genuinely patchable), then times both update
/// paths from the same base plan. Patching chains rep to rep — exactly what
/// the service plan cache does under a monitoring feed.
MutationReport runMutationScenario(std::uint64_t seed, std::size_t reps,
                                   std::size_t enumerateCap) {
  const graph::Graph& pristine = bench::planetlabHost(seed);
  util::Rng rng(util::deriveSeed(seed, 4));
  const graph::Graph query = bench::sampledDelayQuery(pristine, 18, 30, 0.25, rng);
  const expr::ConstraintSet constraints = expr::ConstraintSet::parse(
      topo::delayWindowConstraint(), "rNode.osType == vNode.osType");
  const core::SearchOptions planOptions;

  MutationReport report;
  report.hostNodes = pristine.nodeCount();
  report.hostEdges = pristine.edgeCount();
  report.queryNodes = query.nodeCount();

  service::NetworkModel model{graph::Graph(pristine)};
  std::shared_ptr<const core::FilterPlan> basePlan;
  {
    const graph::Graph baseSnap = model.host();
    basePlan = core::FilterPlan::build(
        core::Problem(query, baseSnap, constraints), planOptions);
  }  // the plan holds no graph references; the snapshot can go

  const graph::NodeId touched = 0;
  const std::string originalOs =
      pristine.nodeAttrs(touched).at("osType").asString();

  std::vector<double> fullTimes, patchTimes;
  graph::Graph patchSnap, fullSnap;
  std::shared_ptr<const core::FilterPlan> patchedPlan, rebuiltPlan;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    model.setNodeAttr(touched, "osType",
                      rep % 2 == 0 ? std::string("mutated-os") : originalOs);
    const core::ModelDelta delta = model.lastDelta();
    {
      util::Stopwatch clock;
      graph::Graph snap = model.host();  // structurally shared snapshot
      patchedPlan = core::FilterPlan::patch(
          *basePlan, core::Problem(query, snap, constraints), planOptions, delta);
      patchTimes.push_back(clock.elapsedMs());
      patchSnap = std::move(snap);
    }
    {
      util::Stopwatch clock;
      graph::Graph snap = model.host().detachedCopy();  // the historical path
      rebuiltPlan = core::FilterPlan::build(
          core::Problem(query, snap, constraints), planOptions);
      fullTimes.push_back(clock.elapsedMs());
      fullSnap = std::move(snap);
    }
    basePlan = patchedPlan;
  }
  report.fullMs = util::median(fullTimes);
  report.patchMs = util::median(patchTimes);

  // Cross-check: both plans describe the same final model version and must
  // enumerate identical solution counts.
  const auto enumerate = [&](const std::shared_ptr<const core::FilterPlan>& plan,
                             const graph::Graph& host) {
    core::SearchOptions o = planOptions;
    o.maxSolutions = enumerateCap;
    o.storeLimit = 1;
    core::SearchContext context(o);
    context.setPlanBuilder(std::make_shared<core::SharedPlanBuilder>(plan));
    return core::ecfSearch(core::Problem(query, host, constraints), context)
        .solutionCount;
  };
  report.enumeratedPatch = enumerate(patchedPlan, patchSnap);
  report.enumeratedFull = enumerate(rebuiltPlan, fullSnap);
  return report;
}

InstanceReport runInstance(const std::string& name, const graph::Graph& query,
                           const graph::Graph& host,
                           const expr::ConstraintSet& constraints,
                           std::size_t reps, std::size_t enumerateCap) {
  const core::Problem problem(query, host, constraints);
  InstanceReport report;
  report.name = name;
  report.queryNodes = query.nodeCount();
  report.queryEdges = query.edgeCount();
  report.hostNodes = host.nodeCount();
  report.hostEdges = host.edgeCount();
  report.csr = timeMode(problem, core::BitsetMode::Off, reps, enumerateCap);
  report.bitset = timeMode(problem, core::BitsetMode::Auto, reps, enumerateCap);
  report.filterEntries = report.csr.filterEntries;
  return report;
}

void writeJson(std::ostream& os, const std::vector<InstanceReport>& reports,
               const MutationReport& mutation, std::uint64_t seed,
               std::size_t reps) {
  const auto mode = [&](const ModeTimings& t) {
    os << "{\"filter_build_ms\": " << t.filterBuildMs
       << ", \"first_match_ms\": " << t.firstMatchMs
       << ", \"enumerate_ms\": " << t.enumerateMs
       << ", \"enumerated\": " << t.enumerated << "}";
  };
  os << "{\n  \"bench\": \"netembed_perf_report\",\n"
     << "  \"seed\": " << seed << ",\n  \"reps\": " << reps << ",\n"
     << "  \"instances\": [\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const InstanceReport& r = reports[i];
    os << "    {\"name\": \"" << r.name << "\", \"query_nodes\": " << r.queryNodes
       << ", \"query_edges\": " << r.queryEdges << ", \"host_nodes\": " << r.hostNodes
       << ", \"host_edges\": " << r.hostEdges
       << ", \"filter_entries\": " << r.filterEntries << ",\n     \"csr\": ";
    mode(r.csr);
    os << ",\n     \"bitset\": ";
    mode(r.bitset);
    os << ",\n     \"enumerate_speedup\": " << r.enumerateSpeedup() << "}"
       << (i + 1 < reports.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"mutation\": {\"host_nodes\": " << mutation.hostNodes
     << ", \"host_edges\": " << mutation.hostEdges
     << ", \"query_nodes\": " << mutation.queryNodes
     << ",\n    \"full_rebuild_ms\": " << mutation.fullMs
     << ", \"patch_ms\": " << mutation.patchMs
     << ", \"patch_speedup\": " << mutation.speedup()
     << ",\n    \"enumerated_full\": " << mutation.enumeratedFull
     << ", \"enumerated_patch\": " << mutation.enumeratedPatch << "}\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const std::size_t reps = static_cast<std::size_t>(args.getInt("reps", 5));
  const std::uint64_t seed = args.getSeed("seed", 42);
  const std::string outPath = args.getString("out", "BENCH_netembed.json");
  const bool check = args.getBool("check");

  std::vector<InstanceReport> reports;

  // Sparse: the synthetic PlanetLab substrate with tight delay windows AND an
  // isBoundTo-style node constraint (OS match) — filter cells hold a handful
  // of candidates each, the CSR path's home turf and the non-regression
  // guard for the density heuristic.
  {
    const graph::Graph& host = bench::planetlabHost(seed);
    util::Rng rng(util::deriveSeed(seed, 1));
    const graph::Graph query = bench::sampledDelayQuery(host, 18, 30, 0.25, rng);
    const expr::ConstraintSet constraints = expr::ConstraintSet::parse(
        topo::delayWindowConstraint(), "rNode.osType == vNode.osType");
    // A lower enumeration cap than the dense instances: each solution here
    // sits deep in a heavily-pruned tree, so 1500 keeps a rep near 300 ms.
    reports.push_back(
        runInstance("planetlab_sparse", query, host, constraints, reps, 1500));
  }

  // Dense BRITE-like: a Waxman topology thick with edges and a widened delay
  // window that lets most of them match — big cells, the word-parallel AND's
  // target workload (fig. 11-13 territory).
  {
    topo::BriteOptions bo;
    bo.nodes = 400;
    bo.model = topo::BriteOptions::Model::Waxman;
    bo.waxmanAlpha = 0.5;
    bo.waxmanBeta = 0.6;
    bo.seed = util::deriveSeed(seed, 2);
    const graph::Graph host = topo::brite(bo);
    util::Rng rng(util::deriveSeed(seed, 3));
    auto sub = topo::sampleConnectedSubgraph(host, 10, 16, rng);
    topo::widenDelayWindows(sub.graph, 2.0);
    const expr::ConstraintSet constraints =
        expr::ConstraintSet::edgeOnly(topo::delayWindowConstraint());
    reports.push_back(
        runInstance("brite_dense", sub.graph, host, constraints, reps, 20000));
  }

  // Clique: topology-only K7 into K56 (§VII-D) — every cell is all-but-one
  // host node and every depth intersects as many constrainer rows as there
  // are mapped neighbours, the densest domains an instance can produce.
  {
    const graph::Graph host = topo::clique(56);
    const graph::Graph query = topo::clique(7);
    const expr::ConstraintSet none;
    reports.push_back(runInstance("clique", query, host, none, reps, 20000));
  }

  const MutationReport mutation = runMutationScenario(seed, reps, 1500);

  util::TablePrinter table(
      {"instance", "entries", "build csr", "build bits", "enum csr", "enum bits",
       "speedup"});
  for (const InstanceReport& r : reports) {
    table.addRow({r.name, std::to_string(r.filterEntries),
                  util::formatFixed(r.csr.filterBuildMs, 2),
                  util::formatFixed(r.bitset.filterBuildMs, 2),
                  util::formatFixed(r.csr.enumerateMs, 2),
                  util::formatFixed(r.bitset.enumerateMs, 2),
                  util::formatFixed(r.enumerateSpeedup(), 2) + "x"});
  }
  std::cout << "\n=== perf baseline (median of " << reps << ") ===\n";
  table.print(std::cout);

  util::TablePrinter mutationTable({"host", "edges", "full rebuild (ms)",
                                    "patch (ms)", "speedup"});
  mutationTable.addRow(
      {std::to_string(mutation.hostNodes), std::to_string(mutation.hostEdges),
       util::formatFixed(mutation.fullMs, 2), util::formatFixed(mutation.patchMs, 2),
       util::formatFixed(mutation.speedup(), 1) + "x"});
  std::cout << "\n=== mutation scenario (1-node-touch deltas, median of " << reps
            << ") ===\n";
  mutationTable.print(std::cout);

  std::ofstream out(outPath);
  if (!out) {
    std::cerr << "FAIL: cannot open " << outPath << " for writing\n";
    return 1;
  }
  writeJson(out, reports, mutation, seed, reps);
  out.flush();
  if (!out) {
    std::cerr << "FAIL: short write to " << outPath << "\n";
    return 1;
  }
  std::cout << "wrote " << outPath << "\n";

  bool ok = true;
  for (const InstanceReport& r : reports) {
    if (r.csr.enumerated != r.bitset.enumerated) {
      std::cerr << "FAIL: " << r.name << " enumerated " << r.csr.enumerated
                << " (csr) vs " << r.bitset.enumerated << " (bitset)\n";
      ok = false;
    }
  }
  if (mutation.enumeratedFull != mutation.enumeratedPatch) {
    std::cerr << "FAIL: mutation scenario enumerated " << mutation.enumeratedFull
              << " (rebuilt) vs " << mutation.enumeratedPatch << " (patched)\n";
    ok = false;
  }
  if (check) {
    if (mutation.speedup() < 5.0) {
      std::cerr << "FAIL: mutation patch speedup " << mutation.speedup()
                << " < 5x\n";
      ok = false;
    }
    for (const InstanceReport& r : reports) {
      const double speedup = r.enumerateSpeedup();
      if (r.name == "planetlab_sparse" && speedup < 0.9) {
        std::cerr << "FAIL: sparse regression > 10% (speedup " << speedup << ")\n";
        ok = false;
      }
      if (r.name != "planetlab_sparse" && speedup < 2.0) {
        std::cerr << "FAIL: " << r.name << " speedup " << speedup << " < 2x\n";
        ok = false;
      }
    }
  }
  return ok ? 0 : 1;
}
