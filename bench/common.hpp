#pragma once
// Shared plumbing for the figure-reproduction benches.
//
// Every binary accepts:
//   --paper          run at the paper's full parameter ranges (slow)
//   --seed <u64>     root seed (default 42)
//   --reps <n>       repetitions per configuration
//   --timeout <ms>   per-search budget
//   --csv            also emit machine-readable CSV after the table

#include <iostream>
#include <string>
#include <vector>

#include "core/ecf.hpp"
#include "core/engine.hpp"
#include "core/lns.hpp"
#include "core/portfolio.hpp"
#include "core/problem.hpp"
#include "core/rwb.hpp"
#include "core/search.hpp"
#include "expr/constraint.hpp"
#include "topo/brite.hpp"
#include "topo/composite.hpp"
#include "topo/regular.hpp"
#include "topo/sample.hpp"
#include "trace/planetlab.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace netembed::bench {

struct BenchConfig {
  bool paper = false;
  bool csv = false;
  std::uint64_t seed = 42;
  std::size_t reps = 3;
  std::chrono::milliseconds timeout{1500};

  static BenchConfig fromArgs(const util::ArgParser& args,
                              std::size_t defaultReps = 3,
                              long long defaultTimeoutMs = 1500) {
    BenchConfig cfg;
    cfg.paper = args.getBool("paper");
    cfg.csv = args.getBool("csv");
    cfg.seed = args.getSeed("seed", 42);
    cfg.reps = static_cast<std::size_t>(args.getInt("reps", static_cast<long long>(
                                                                cfg.paper ? 5 : defaultReps)));
    cfg.timeout = std::chrono::milliseconds(
        args.getInt("timeout", cfg.paper ? 60'000 : defaultTimeoutMs));
    return cfg;
  }
};

/// The synthetic PlanetLab hosting network (cached per process).
inline const graph::Graph& planetlabHost(std::uint64_t seed = 42) {
  static const graph::Graph host = [seed] {
    trace::PlanetLabOptions options;
    options.seed = seed;
    return trace::synthesize(options);
  }();
  return host;
}

/// A feasible delay-window query: connected subgraph of `host` with `nodes`
/// nodes and ~`edges` edges, windows widened by `tolerance`.
inline graph::Graph sampledDelayQuery(const graph::Graph& host, std::size_t nodes,
                                      std::size_t edges, double tolerance,
                                      util::Rng& rng) {
  auto sub = topo::sampleConnectedSubgraph(host, nodes, edges, rng);
  topo::widenDelayWindows(sub.graph, tolerance);
  return std::move(sub.graph);
}

inline core::EmbedResult runAlgorithm(core::Algorithm algorithm,
                                      const core::Problem& problem,
                                      const core::SearchOptions& options) {
  return core::runSearch(algorithm, problem, options);
}

/// Format "mean +/- ci" with 1 decimal.
inline std::string meanCi(const util::RunningStats& stats) {
  if (stats.count() == 0) return "-";
  return util::formatFixed(stats.mean(), 1) + " +/- " +
         util::formatFixed(stats.ci95HalfWidth(), 1);
}

/// Emit a table and (optionally) CSV to stdout.
inline void emit(const std::string& title, util::TablePrinter& table,
                 const std::vector<std::vector<std::string>>& csvRows,
                 const std::vector<std::string>& csvHeader, bool csv) {
  std::cout << "\n=== " << title << " ===\n";
  table.print(std::cout);
  if (csv) {
    util::CsvWriter writer(std::cout);
    writer.row(csvHeader);
    for (const auto& row : csvRows) writer.row(row);
  }
  std::cout.flush();
}

}  // namespace netembed::bench
