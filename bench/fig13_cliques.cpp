// Figure 13 (a,b): embedding cliques into the PlanetLab trace. The query is
// a k-clique whose only constraint is an end-to-end average delay between 10
// and 100 ms — under-constrained (about 23% of the trace's edges qualify)
// AND regular, the two properties §VII-D identifies as worst cases.
//
//   (a) mean time to find ALL embeddings (LNS typically times out — as in
//       the paper, where "LNS always times out" on this workload)
//   (b) time to find the FIRST embedding — LNS wins decisively.

#include "common.hpp"

using namespace netembed;
using namespace netembed::bench;

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const BenchConfig cfg = BenchConfig::fromArgs(args, 3, 1000);

  const graph::Graph& host = planetlabHost(cfg.seed);
  const auto constraints =
      expr::ConstraintSet::edgeOnly(topo::avgDelayWindowConstraint());

  std::vector<std::size_t> sizesAll, sizesFirst;
  if (cfg.paper) {
    for (std::size_t k = 2; k <= 20; k += 2) sizesAll.push_back(k);
    sizesFirst = sizesAll;
  } else {
    sizesAll = {3, 4, 5};
    sizesFirst = {3, 4, 6, 8, 10};
  }

  util::TablePrinter allTable(
      {"k", "ECF all (ms)", "RWB all (ms)", "LNS all (ms)", "ECF outcome"});
  util::TablePrinter firstTable(
      {"k", "ECF first (ms)", "RWB first (ms)", "LNS first (ms)"});
  std::vector<std::vector<std::string>> csvRows;

  const core::Algorithm algos[3] = {core::Algorithm::ECF, core::Algorithm::RWB,
                                    core::Algorithm::LNS};

  for (const std::size_t k : sizesAll) {
    const graph::Graph query = topo::cliqueQuery(k, 10.0, 100.0);
    const core::Problem problem(query, host, constraints);
    util::RunningStats stats[3];
    core::Outcome lastOutcome = core::Outcome::Complete;
    for (std::size_t rep = 0; rep < cfg.reps; ++rep) {
      for (int a = 0; a < 3; ++a) {
        core::SearchOptions options;
        options.timeout = cfg.timeout;
        options.storeLimit = 1;
        options.seed = rep + 1;
        if (algos[a] == core::Algorithm::RWB) {
          options.maxSolutions = static_cast<std::size_t>(-1);
        }
        const auto result = runAlgorithm(algos[a], problem, options);
        stats[a].add(result.stats.searchMs);
        if (a == 0) lastOutcome = result.outcome;
      }
    }
    allTable.addRow({std::to_string(k), meanCi(stats[0]), meanCi(stats[1]),
                     meanCi(stats[2]), core::outcomeName(lastOutcome)});
  }

  for (const std::size_t k : sizesFirst) {
    const graph::Graph query = topo::cliqueQuery(k, 10.0, 100.0);
    const core::Problem problem(query, host, constraints);
    util::RunningStats stats[3];
    for (std::size_t rep = 0; rep < cfg.reps; ++rep) {
      for (int a = 0; a < 3; ++a) {
        core::SearchOptions options;
        options.timeout = cfg.timeout;
        options.storeLimit = 1;
        options.maxSolutions = 1;
        options.seed = rep + 1;
        stats[a].add(runAlgorithm(algos[a], problem, options).stats.searchMs);
      }
    }
    firstTable.addRow(
        {std::to_string(k), meanCi(stats[0]), meanCi(stats[1]), meanCi(stats[2])});
    csvRows.push_back({std::to_string(k), util::CsvWriter::field(stats[0].mean()),
                       util::CsvWriter::field(stats[1].mean()),
                       util::CsvWriter::field(stats[2].mean())});
  }

  emit("Figure 13a: clique queries on PlanetLab — ALL matches (delay 10..100ms)",
       allTable, {}, {}, false);
  emit("Figure 13b: clique queries on PlanetLab — FIRST match", firstTable, csvRows,
       {"k", "ecf_first_ms", "rwb_first_ms", "lns_first_ms"}, cfg.csv);
  return 0;
}
