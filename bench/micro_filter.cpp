// Microbenchmarks for stage-1 filter construction — the |E_Q| x |E_R|
// constraint sweep that dominates ECF/RWB setup — serial vs. parallel.

#include <benchmark/benchmark.h>

#include <memory>

#include "core/ecf.hpp"
#include "core/filter.hpp"
#include "core/plan.hpp"
#include "topo/regular.hpp"
#include "topo/sample.hpp"
#include "trace/planetlab.hpp"
#include "util/rng.hpp"

namespace {

using namespace netembed;

struct Fixture {
  graph::Graph host;
  graph::Graph query;
  expr::ConstraintSet constraints;

  explicit Fixture(std::size_t queryNodes) {
    trace::PlanetLabOptions options;
    options.sites = 150;  // keep the microbench itself fast
    options.clusters = 15;
    options.seed = 11;
    host = trace::synthesize(options);
    util::Rng rng(7);
    auto sub = topo::sampleConnectedSubgraph(host, queryNodes, 2 * queryNodes, rng);
    topo::widenDelayWindows(sub.graph, 0.10);
    query = std::move(sub.graph);
    constraints = expr::ConstraintSet::edgeOnly(topo::delayWindowConstraint());
  }
};

void BM_FilterBuild(benchmark::State& state) {
  const Fixture fixture(static_cast<std::size_t>(state.range(0)));
  const core::Problem problem(fixture.query, fixture.host, fixture.constraints);
  core::SearchOptions options;
  options.parallelFilterBuild = state.range(1) != 0;
  for (auto _ : state) {
    core::SearchStats stats;
    const auto fm = core::FilterMatrix::build(problem, options, stats);
    benchmark::DoNotOptimize(fm.totalEntries());
  }
  state.SetLabel(options.parallelFilterBuild ? "parallel" : "serial");
}
BENCHMARK(BM_FilterBuild)
    ->Args({10, 0})
    ->Args({10, 1})
    ->Args({30, 0})
    ->Args({30, 1})
    ->Args({60, 0})
    ->Args({60, 1});

/// Run ECF against a pre-resolved shared plan so iterations time pure
/// candidate enumeration, not the stage-1 build.
void runEnumeration(benchmark::State& state, const core::Problem& problem,
                    core::SearchOptions options) {
  options.storeLimit = 1;
  options.maxSolutions = 20000;  // bounded: full enumerations are astronomical
  options.bitsetMode =
      state.range(0) != 0 ? core::BitsetMode::Auto : core::BitsetMode::Off;
  const auto builder = std::make_shared<core::SharedPlanBuilder>(
      core::FilterPlan::build(problem, options));
  for (auto _ : state) {
    core::SearchContext context(options);
    context.setPlanBuilder(builder);
    const auto result = core::ecfSearch(problem, context);
    benchmark::DoNotOptimize(result.solutionCount);
  }
  state.SetLabel(state.range(0) != 0 ? "bitset" : "csr");
}

void BM_CandidateIntersection(benchmark::State& state) {
  // Candidate intersections on a modest PlanetLab-style instance. Arg
  // toggles the candidate-domain representation (0 = CSR-only, 1 = dual
  // CSR/bitset default).
  const Fixture fixture(20);
  const core::Problem problem(fixture.query, fixture.host, fixture.constraints);
  runEnumeration(state, problem, {});
}
BENCHMARK(BM_CandidateIntersection)->Arg(0)->Arg(1);

void BM_CandidateIntersectionDense(benchmark::State& state) {
  // The dense §VII-D shape (clique query into a clique host): every depth
  // intersects as many all-but-one rows as there are mapped neighbours —
  // the word-parallel AND's target workload.
  const graph::Graph host = topo::clique(56);
  const graph::Graph query = topo::clique(7);
  const expr::ConstraintSet none;
  const core::Problem problem(query, host, none);
  runEnumeration(state, problem, {});
}
BENCHMARK(BM_CandidateIntersectionDense)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
