// Microbenchmarks for stage-1 filter construction — the |E_Q| x |E_R|
// constraint sweep that dominates ECF/RWB setup — serial vs. parallel.

#include <benchmark/benchmark.h>

#include "core/ecf.hpp"
#include "core/filter.hpp"
#include "topo/sample.hpp"
#include "trace/planetlab.hpp"
#include "util/rng.hpp"

namespace {

using namespace netembed;

struct Fixture {
  graph::Graph host;
  graph::Graph query;
  expr::ConstraintSet constraints;

  explicit Fixture(std::size_t queryNodes) {
    trace::PlanetLabOptions options;
    options.sites = 150;  // keep the microbench itself fast
    options.clusters = 15;
    options.seed = 11;
    host = trace::synthesize(options);
    util::Rng rng(7);
    auto sub = topo::sampleConnectedSubgraph(host, queryNodes, 2 * queryNodes, rng);
    topo::widenDelayWindows(sub.graph, 0.10);
    query = std::move(sub.graph);
    constraints = expr::ConstraintSet::edgeOnly(topo::delayWindowConstraint());
  }
};

void BM_FilterBuild(benchmark::State& state) {
  const Fixture fixture(static_cast<std::size_t>(state.range(0)));
  const core::Problem problem(fixture.query, fixture.host, fixture.constraints);
  core::SearchOptions options;
  options.parallelFilterBuild = state.range(1) != 0;
  for (auto _ : state) {
    core::SearchStats stats;
    const auto fm = core::FilterMatrix::build(problem, options, stats);
    benchmark::DoNotOptimize(fm.totalEntries());
  }
  state.SetLabel(options.parallelFilterBuild ? "parallel" : "serial");
}
BENCHMARK(BM_FilterBuild)
    ->Args({10, 0})
    ->Args({10, 1})
    ->Args({30, 0})
    ->Args({30, 1})
    ->Args({60, 0})
    ->Args({60, 1});

void BM_CandidateIntersection(benchmark::State& state) {
  // End-to-end ECF on a modest instance: dominated by candidate set
  // intersections once filters exist.
  const Fixture fixture(20);
  const core::Problem problem(fixture.query, fixture.host, fixture.constraints);
  core::SearchOptions options;
  options.storeLimit = 1;
  for (auto _ : state) {
    const auto result = core::ecfSearch(problem, options);
    benchmark::DoNotOptimize(result.solutionCount);
  }
}
BENCHMARK(BM_CandidateIntersection);

}  // namespace

BENCHMARK_MAIN();
