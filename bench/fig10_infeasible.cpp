// Figure 10: search times for feasible (Match) vs. infeasible (NoMatch)
// queries on the PlanetLab trace, per algorithm.
//
// Infeasible queries are the feasible ones with some link delay windows
// moved to impossible values — the topology is unchanged, only the
// constraints. Expected shape: ECF and RWB take similar time either way
// (they sweep much of the filtered tree regardless); LNS is slower overall
// but rejects infeasible queries comparatively quickly.

#include "common.hpp"

using namespace netembed;
using namespace netembed::bench;

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const BenchConfig cfg = BenchConfig::fromArgs(args, 3, 1500);

  const graph::Graph& host = planetlabHost(cfg.seed);
  const auto constraints = expr::ConstraintSet::edgeOnly(topo::delayWindowConstraint());

  std::vector<std::size_t> sizes;
  if (cfg.paper) {
    for (std::size_t n = 40; n <= 200; n += 20) sizes.push_back(n);
  } else {
    sizes = {10, 20, 40, 60};
  }

  util::TablePrinter table({"N", "ECF match", "ECF nomatch", "RWB match",
                            "RWB nomatch", "LNS match", "LNS nomatch"});
  std::vector<std::vector<std::string>> csvRows;

  for (const std::size_t n : sizes) {
    util::RunningStats match[3], nomatch[3];
    for (std::size_t rep = 0; rep < cfg.reps; ++rep) {
      util::Rng rng(util::deriveSeed(cfg.seed, n * 1000 + rep));
      const graph::Graph feasible = sampledDelayQuery(host, n, 3 * n, 0.02, rng);
      graph::Graph infeasible = feasible;
      topo::makeInfeasible(infeasible, 0.25, rng);

      const core::Algorithm algos[3] = {core::Algorithm::ECF, core::Algorithm::RWB,
                                        core::Algorithm::LNS};
      for (int a = 0; a < 3; ++a) {
        core::SearchOptions options;
        options.timeout = cfg.timeout;
        options.storeLimit = 1;
        options.seed = rep + 1;
        if (algos[a] == core::Algorithm::RWB) {
          options.maxSolutions = static_cast<std::size_t>(-1);
        }
        const core::Problem feasibleProblem(feasible, host, constraints);
        match[a].add(runAlgorithm(algos[a], feasibleProblem, options).stats.searchMs);
        const core::Problem infeasibleProblem(infeasible, host, constraints);
        nomatch[a].add(
            runAlgorithm(algos[a], infeasibleProblem, options).stats.searchMs);
      }
    }
    table.addRow({std::to_string(n), meanCi(match[0]), meanCi(nomatch[0]),
                  meanCi(match[1]), meanCi(nomatch[1]), meanCi(match[2]),
                  meanCi(nomatch[2])});
    csvRows.push_back({std::to_string(n),
                       util::CsvWriter::field(match[0].mean()),
                       util::CsvWriter::field(nomatch[0].mean()),
                       util::CsvWriter::field(match[1].mean()),
                       util::CsvWriter::field(nomatch[1].mean()),
                       util::CsvWriter::field(match[2].mean()),
                       util::CsvWriter::field(nomatch[2].mean())});
  }

  emit("Figure 10: feasible vs infeasible queries (PlanetLab, mean search ms)", table,
       csvRows,
       {"n", "ecf_match", "ecf_nomatch", "rwb_match", "rwb_nomatch", "lns_match",
        "lns_nomatch"},
       cfg.csv);
  return 0;
}
