// §VII-F: NETEMBED vs. prior-art baselines on identical instances —
//   * naive backtracking (constraint-satisfaction search without NETEMBED's
//     filters/ordering, [16]-style),
//   * simulated annealing (`assign` [13] family),
//   * genetic algorithm (`wanassign` [10] family).
//
// Expected shape: ECF/RWB/LNS answer in milliseconds where the
// metaheuristics need orders of magnitude longer and sometimes fail
// outright (no completeness guarantee), mirroring the paper's claim that
// prior techniques "handle only small networks ... tens of minutes".

#include "baseline/anneal.hpp"
#include "baseline/genetic.hpp"
#include "baseline/naive.hpp"
#include "common.hpp"

using namespace netembed;
using namespace netembed::bench;

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const BenchConfig cfg = BenchConfig::fromArgs(args, 3, 3000);

  const graph::Graph& host = planetlabHost(cfg.seed);
  const auto constraints = expr::ConstraintSet::edgeOnly(topo::delayWindowConstraint());

  const std::vector<std::size_t> sizes =
      cfg.paper ? std::vector<std::size_t>{8, 12, 16, 24, 32}
                : std::vector<std::size_t>{6, 10, 14};

  util::TablePrinter table({"N", "ECF (ms)", "RWB (ms)", "LNS (ms)", "naive (ms)",
                            "anneal (ms)", "genetic (ms)", "ok E/R/L/N/A/G"});
  std::vector<std::vector<std::string>> csvRows;

  for (const std::size_t n : sizes) {
    util::RunningStats ms[6];
    std::size_t ok[6] = {0, 0, 0, 0, 0, 0};
    for (std::size_t rep = 0; rep < cfg.reps; ++rep) {
      util::Rng rng(util::deriveSeed(cfg.seed, n * 1000 + rep));
      const graph::Graph query = sampledDelayQuery(host, n, 3 * n, 0.02, rng);
      const core::Problem problem(query, host, constraints);

      core::SearchOptions first;
      first.timeout = cfg.timeout;
      first.storeLimit = 1;
      first.maxSolutions = 1;
      first.seed = rep + 1;

      const auto record = [&](int i, const core::EmbedResult& r) {
        ms[i].add(r.stats.searchMs);
        if (r.feasible()) ++ok[i];
      };
      record(0, core::ecfSearch(problem, first));
      record(1, core::rwbSearch(problem, first));
      record(2, core::lnsSearch(problem, first));
      record(3, baseline::naiveSearch(problem, first));

      baseline::AnnealOptions annealOpts;
      annealOpts.seed = rep + 1;
      record(4, baseline::annealSearch(problem, annealOpts, first));

      baseline::GeneticOptions geneticOpts;
      geneticOpts.seed = rep + 1;
      record(5, baseline::geneticSearch(problem, geneticOpts, first));
    }
    std::string okCol;
    for (int i = 0; i < 6; ++i) {
      if (i) okCol += "/";
      okCol += std::to_string(ok[i]);
    }
    table.addRow({std::to_string(n), meanCi(ms[0]), meanCi(ms[1]), meanCi(ms[2]),
                  meanCi(ms[3]), meanCi(ms[4]), meanCi(ms[5]), okCol});
    csvRows.push_back({std::to_string(n), util::CsvWriter::field(ms[0].mean()),
                       util::CsvWriter::field(ms[1].mean()),
                       util::CsvWriter::field(ms[2].mean()),
                       util::CsvWriter::field(ms[3].mean()),
                       util::CsvWriter::field(ms[4].mean()),
                       util::CsvWriter::field(ms[5].mean())});
  }

  emit("Baselines (§VII-F): first feasible mapping on PlanetLab subgraph queries "
       "(ok = successes out of " + std::to_string(cfg.reps) + " reps)",
       table, csvRows,
       {"n", "ecf_ms", "rwb_ms", "lns_ms", "naive_ms", "anneal_ms", "genetic_ms"},
       cfg.csv);
  return 0;
}
