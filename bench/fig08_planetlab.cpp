// Figure 8 (a,b,c): mean search time vs. query size on the PlanetLab trace.
//   (a) ECF — all matches and first match
//   (b) RWB — first match
//   (c) LNS — all matches (with timeout) and first match
//
// Queries are random connected subgraphs of the hosting network (feasible by
// construction) under the §VII-B constraint: the real link's delay range
// must lie within the query link's delay window.
//
// Expected shape: ECF/RWB roughly linear in query size at fixed host; the
// all-matches and first-match ECF curves nearly coincide; LNS all-matches is
// slow/high-variance while LNS first-match stays flat.

#include "common.hpp"

using namespace netembed;
using namespace netembed::bench;

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const BenchConfig cfg = BenchConfig::fromArgs(args, 3, 1500);

  const graph::Graph& host = planetlabHost(cfg.seed);
  const auto constraints = expr::ConstraintSet::edgeOnly(topo::delayWindowConstraint());

  std::vector<std::size_t> sizes;
  if (cfg.paper) {
    for (std::size_t n = 20; n <= 220; n += 20) sizes.push_back(n);
  } else {
    sizes = {10, 20, 40, 60, 80};
  }

  util::TablePrinter table({"N", "E", "ECF all (ms)", "ECF first (ms)",
                            "RWB first (ms)", "LNS all (ms)", "LNS first (ms)",
                            "matches"});
  std::vector<std::vector<std::string>> csvRows;

  for (const std::size_t n : sizes) {
    util::RunningStats ecfAll, ecfFirst, rwbFirst, lnsAll, lnsFirst, edges, matches;
    for (std::size_t rep = 0; rep < cfg.reps; ++rep) {
      util::Rng rng(util::deriveSeed(cfg.seed, n * 1000 + rep));
      const graph::Graph query = sampledDelayQuery(host, n, 3 * n, 0.02, rng);
      edges.add(static_cast<double>(query.edgeCount()));
      const core::Problem problem(query, host, constraints);

      core::SearchOptions all;
      all.timeout = cfg.timeout;
      all.storeLimit = 1;
      all.seed = rep + 1;
      const auto ecf = runAlgorithm(core::Algorithm::ECF, problem, all);
      ecfAll.add(ecf.stats.searchMs);
      if (ecf.stats.firstMatchMs >= 0) ecfFirst.add(ecf.stats.firstMatchMs);
      matches.add(static_cast<double>(ecf.solutionCount));

      core::SearchOptions first = all;
      first.maxSolutions = 1;
      const auto rwb = runAlgorithm(core::Algorithm::RWB, problem, first);
      rwbFirst.add(rwb.stats.searchMs);

      const auto lns = runAlgorithm(core::Algorithm::LNS, problem, all);
      lnsAll.add(lns.stats.searchMs);
      const auto lnsF = runAlgorithm(core::Algorithm::LNS, problem, first);
      lnsFirst.add(lnsF.stats.searchMs);
    }
    table.addRow({std::to_string(n), util::formatFixed(edges.mean(), 0), meanCi(ecfAll),
                  meanCi(ecfFirst), meanCi(rwbFirst), meanCi(lnsAll), meanCi(lnsFirst),
                  util::formatFixed(matches.mean(), 0)});
    csvRows.push_back({std::to_string(n), util::CsvWriter::field(edges.mean()),
                       util::CsvWriter::field(ecfAll.mean()),
                       util::CsvWriter::field(ecfFirst.mean()),
                       util::CsvWriter::field(rwbFirst.mean()),
                       util::CsvWriter::field(lnsAll.mean()),
                       util::CsvWriter::field(lnsFirst.mean()),
                       util::CsvWriter::field(matches.mean())});
  }

  emit("Figure 8: PlanetLab subgraph queries (host N=" +
           std::to_string(host.nodeCount()) + " E=" + std::to_string(host.edgeCount()) +
           ")",
       table, csvRows,
       {"n", "e", "ecf_all_ms", "ecf_first_ms", "rwb_first_ms", "lns_all_ms",
        "lns_first_ms", "matches"},
       cfg.csv);
  return 0;
}
