// Microbenchmarks for the constraint expression engine: parse+compile cost,
// and the bytecode VM vs. the AST interpreter on the paper's example
// expressions (the interpreter-vs-VM ablation).

#include <benchmark/benchmark.h>

#include "expr/constraint.hpp"
#include "expr/parser.hpp"
#include "expr/vm.hpp"
#include "graph/attr_map.hpp"

namespace {

using namespace netembed;

const char* const kDelayTolerance =
    "rEdge.avgDelay>=0.90*vEdge.avgDelay && rEdge.avgDelay<=1.10*vEdge.avgDelay";
const char* const kDelayWindow =
    "rEdge.minDelay >= vEdge.minDelay && rEdge.maxDelay <= vEdge.maxDelay";
const char* const kGeoDistance =
    "sqrt((vSource.x-vTarget.x)*(vSource.x-vTarget.x)+"
    "(vSource.y-vTarget.y)*(vSource.y-vTarget.y)) < 100.0";
const char* const kBinding = "isBoundTo(vSource.osType, rSource.osType)";

struct Context {
  graph::AttrMap vEdge, rEdge, vSource, vTarget, rSource, rTarget;
  expr::EvalContext ctx;

  Context() {
    vEdge.set("avgDelay", 100.0);
    vEdge.set("minDelay", 90.0);
    vEdge.set("maxDelay", 120.0);
    rEdge.set("avgDelay", 95.0);
    rEdge.set("minDelay", 92.0);
    rEdge.set("maxDelay", 110.0);
    vSource.set("x", 10.0);
    vSource.set("y", 20.0);
    vSource.set("osType", "linux-2.6");
    vTarget.set("x", 40.0);
    vTarget.set("y", 60.0);
    rSource.set("osType", "linux-2.6");
    ctx.bind(expr::ObjectId::VEdge, vEdge);
    ctx.bind(expr::ObjectId::REdge, rEdge);
    ctx.bind(expr::ObjectId::VSource, vSource);
    ctx.bind(expr::ObjectId::VTarget, vTarget);
    ctx.bind(expr::ObjectId::RSource, rSource);
    ctx.bind(expr::ObjectId::RTarget, rTarget);
  }
};

void BM_ParseAndCompile(benchmark::State& state) {
  for (auto _ : state) {
    const expr::Ast ast = expr::parse(kDelayTolerance);
    const expr::Program program = expr::compile(ast);
    benchmark::DoNotOptimize(program.code().size());
  }
}
BENCHMARK(BM_ParseAndCompile);

void benchVm(benchmark::State& state, const char* source) {
  const Context fixture;
  const expr::Ast ast = expr::parse(source);
  const expr::Program program = expr::compile(ast);
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr::run(program, fixture.ctx));
  }
}

void benchInterp(benchmark::State& state, const char* source) {
  const Context fixture;
  const expr::Ast ast = expr::parse(source);
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr::evalAst(*ast.root, fixture.ctx).truthy());
  }
}

void BM_VmDelayTolerance(benchmark::State& s) { benchVm(s, kDelayTolerance); }
void BM_InterpDelayTolerance(benchmark::State& s) { benchInterp(s, kDelayTolerance); }
void BM_VmDelayWindow(benchmark::State& s) { benchVm(s, kDelayWindow); }
void BM_InterpDelayWindow(benchmark::State& s) { benchInterp(s, kDelayWindow); }
void BM_VmGeoDistance(benchmark::State& s) { benchVm(s, kGeoDistance); }
void BM_InterpGeoDistance(benchmark::State& s) { benchInterp(s, kGeoDistance); }
void BM_VmBinding(benchmark::State& s) { benchVm(s, kBinding); }
void BM_InterpBinding(benchmark::State& s) { benchInterp(s, kBinding); }

BENCHMARK(BM_VmDelayTolerance);
BENCHMARK(BM_InterpDelayTolerance);
BENCHMARK(BM_VmDelayWindow);
BENCHMARK(BM_InterpDelayWindow);
BENCHMARK(BM_VmGeoDistance);
BENCHMARK(BM_InterpGeoDistance);
BENCHMARK(BM_VmBinding);
BENCHMARK(BM_InterpBinding);

}  // namespace

BENCHMARK_MAIN();
