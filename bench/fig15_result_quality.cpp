// Figure 15: probability distribution of result types per query class and
// algorithm, under a fixed time budget:
//   * all      — search exhausted: the COMPLETE set of embeddings returned
//                (for infeasible queries: infeasibility proven)
//   * some     — timed out after finding at least one embedding (partial)
//   * none     — timed out with nothing found (inconclusive)
//
// Expected shape: >70% success (all+some) almost everywhere; LNS beats ECF
// on regular classes (clique/composite); ECF beats LNS on tightly
// constrained subgraph queries.

#include <functional>

#include "common.hpp"

using namespace netembed;
using namespace netembed::bench;

namespace {

struct QueryClass {
  std::string name;
  std::function<graph::Graph(util::Rng&)> make;
  const char* constraint;
};

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const BenchConfig cfg = BenchConfig::fromArgs(args, 10, 400);

  const graph::Graph& host = planetlabHost(cfg.seed);
  const std::size_t subgraphNodes = cfg.paper ? 100 : 30;
  const std::size_t cliqueSize = cfg.paper ? 10 : 6;

  const std::vector<QueryClass> classes = {
      {"subgraph",
       [&](util::Rng& rng) {
         return sampledDelayQuery(host, subgraphNodes, 3 * subgraphNodes, 0.02, rng);
       },
       topo::delayWindowConstraint()},
      {"subgraph-infeasible",
       [&](util::Rng& rng) {
         graph::Graph q =
             sampledDelayQuery(host, subgraphNodes, 3 * subgraphNodes, 0.02, rng);
         topo::makeInfeasible(q, 0.25, rng);
         return q;
       },
       topo::delayWindowConstraint()},
      {"clique",
       [&](util::Rng&) { return topo::cliqueQuery(cliqueSize, 10.0, 100.0); },
       topo::avgDelayWindowConstraint()},
      {"composite-regular",
       [&](util::Rng&) {
         topo::CompositeSpec spec;
         spec.groups = 4;
         spec.groupSize = 5;
         graph::Graph q = topo::composite(spec);
         topo::assignLevelDelayWindows(q, 75.0, 350.0, 1.0, 75.0);
         return q;
       },
       topo::avgDelayWindowConstraint()},
      {"composite-irregular",
       [&](util::Rng& rng) {
         topo::CompositeSpec spec;
         spec.groups = 4;
         spec.groupSize = 5;
         graph::Graph q = topo::composite(spec);
         topo::assignRandomDelayWindows(q, 25.0, 175.0, 60.0, rng);
         return q;
       },
       topo::avgDelayWindowConstraint()}};

  const core::Algorithm algos[3] = {core::Algorithm::ECF, core::Algorithm::RWB,
                                    core::Algorithm::LNS};

  util::TablePrinter table({"class", "algorithm", "P(all)", "P(some)", "P(none)"});
  std::vector<std::vector<std::string>> csvRows;

  for (const QueryClass& queryClass : classes) {
    for (int a = 0; a < 3; ++a) {
      std::size_t all = 0, some = 0, none = 0;
      for (std::size_t rep = 0; rep < cfg.reps; ++rep) {
        util::Rng rng(util::deriveSeed(cfg.seed, rep * 31 + a));
        const graph::Graph query = queryClass.make(rng);
        const auto constraints = expr::ConstraintSet::edgeOnly(queryClass.constraint);
        const core::Problem problem(query, host, constraints);
        core::SearchOptions options;
        options.timeout = cfg.timeout;
        options.storeLimit = 1;
        options.seed = rep + 1;
        // RWB is a first-match algorithm by design (the paper notes it
        // always returns a partial result); the others enumerate.
        if (algos[a] == core::Algorithm::RWB) options.maxSolutions = 1;
        const auto result = runAlgorithm(algos[a], problem, options);
        switch (result.outcome) {
          case core::Outcome::Complete: ++all; break;
          case core::Outcome::Partial: ++some; break;
          case core::Outcome::Inconclusive: ++none; break;
        }
      }
      const double total = static_cast<double>(cfg.reps);
      table.addRow({queryClass.name, core::algorithmName(algos[a]),
                    util::formatFixed(all / total, 2), util::formatFixed(some / total, 2),
                    util::formatFixed(none / total, 2)});
      csvRows.push_back({queryClass.name, core::algorithmName(algos[a]),
                         util::CsvWriter::field(all / total),
                         util::CsvWriter::field(some / total),
                         util::CsvWriter::field(none / total)});
    }
  }

  emit("Figure 15: probability of result types per query class (budget " +
           std::to_string(cfg.timeout.count()) + " ms)",
       table, csvRows, {"class", "algorithm", "p_all", "p_some", "p_none"}, cfg.csv);
  return 0;
}
