// Figure 12: mean time to find the FIRST match on BRITE-like hosting
// networks (companion to Figure 11).
//
// Expected shape: the gap between ECF/RWB and LNS narrows substantially
// compared to the all-matches panel.

#include "common.hpp"

using namespace netembed;
using namespace netembed::bench;

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const BenchConfig cfg = BenchConfig::fromArgs(args, 2, 1500);

  const std::vector<std::size_t> hostSizes =
      cfg.paper ? std::vector<std::size_t>{1500, 2000, 2500}
                : std::vector<std::size_t>{300, 500, 800};
  const std::vector<double> queryFractions = cfg.paper
                                                 ? std::vector<double>{0.1, 0.2, 0.4, 0.6, 0.8}
                                                 : std::vector<double>{0.1, 0.2, 0.4};

  const auto constraints = expr::ConstraintSet::edgeOnly(topo::delayWindowConstraint());
  util::TablePrinter table({"host N", "query N", "ECF first (ms)", "RWB first (ms)",
                            "LNS first (ms)"});
  std::vector<std::vector<std::string>> csvRows;

  for (const std::size_t hostSize : hostSizes) {
    topo::BriteOptions bo;
    bo.nodes = hostSize;
    bo.m = 2;
    bo.seed = util::deriveSeed(cfg.seed, hostSize);
    const graph::Graph host = topo::brite(bo);

    for (const double fraction : queryFractions) {
      const auto queryNodes = static_cast<std::size_t>(fraction * hostSize);
      if (queryNodes < 3) continue;
      util::RunningStats stats[3];
      for (std::size_t rep = 0; rep < cfg.reps; ++rep) {
        util::Rng rng(util::deriveSeed(cfg.seed, hostSize * 137 + queryNodes + rep));
        const graph::Graph query =
            sampledDelayQuery(host, queryNodes, queryNodes * 2, 0.02, rng);
        const core::Problem problem(query, host, constraints);
        const core::Algorithm algos[3] = {core::Algorithm::ECF, core::Algorithm::RWB,
                                          core::Algorithm::LNS};
        for (int a = 0; a < 3; ++a) {
          core::SearchOptions options;
          options.timeout = cfg.timeout;
          options.storeLimit = 1;
          options.maxSolutions = 1;
          options.seed = rep + 1;
          stats[a].add(runAlgorithm(algos[a], problem, options).stats.searchMs);
        }
      }
      table.addRow({std::to_string(hostSize), std::to_string(queryNodes),
                    meanCi(stats[0]), meanCi(stats[1]), meanCi(stats[2])});
      csvRows.push_back({std::to_string(hostSize), std::to_string(queryNodes),
                         util::CsvWriter::field(stats[0].mean()),
                         util::CsvWriter::field(stats[1].mean()),
                         util::CsvWriter::field(stats[2].mean())});
    }
  }

  emit("Figure 12: time to first match on BRITE topologies", table, csvRows,
       {"host_n", "query_n", "ecf_ms", "rwb_ms", "lns_ms"}, cfg.csv);
  return 0;
}
