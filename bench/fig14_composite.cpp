// Figure 14 (a,b): two-level composite queries on the PlanetLab trace, time
// to find the first match.
//   (a) regular per-level constraints: root links 75..350 ms, leaf links
//       1..75 ms (inter-site vs intra-site delays)
//   (b) irregular constraints: per-edge random windows inside 25..175 ms
//       (~70% of the trace's links fall in that range)
//
// Expected shape: LNS finds the first solution in near-constant time and
// far outperforms ECF/RWB on these regular, under-constrained queries.

#include "common.hpp"

using namespace netembed;
using namespace netembed::bench;

namespace {

struct Variant {
  const char* name;
  topo::Shape root;
  topo::Shape leaf;
};

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const BenchConfig cfg = BenchConfig::fromArgs(args, 3, 1500);

  const graph::Graph& host = planetlabHost(cfg.seed);
  const auto constraints =
      expr::ConstraintSet::edgeOnly(topo::avgDelayWindowConstraint());

  const std::vector<std::pair<std::size_t, std::size_t>> shapes =
      cfg.paper ? std::vector<std::pair<std::size_t, std::size_t>>{
                      {3, 4}, {4, 5}, {5, 6}, {6, 8}, {7, 9}, {8, 8}}
                : std::vector<std::pair<std::size_t, std::size_t>>{
                      {3, 3}, {3, 4}, {4, 4}, {4, 6}};
  const Variant variants[] = {{"ring-of-stars", topo::Shape::Ring, topo::Shape::Star},
                              {"star-of-rings", topo::Shape::Star, topo::Shape::Ring}};

  const core::Algorithm algos[3] = {core::Algorithm::ECF, core::Algorithm::RWB,
                                    core::Algorithm::LNS};

  for (const bool regular : {true, false}) {
    util::TablePrinter table({"shape", "groups x size", "N", "ECF first (ms)",
                              "RWB first (ms)", "LNS first (ms)"});
    std::vector<std::vector<std::string>> csvRows;
    for (const Variant& variant : variants) {
      for (const auto& [groups, groupSize] : shapes) {
        util::RunningStats stats[3];
        std::size_t nodes = 0;
        for (std::size_t rep = 0; rep < cfg.reps; ++rep) {
          topo::CompositeSpec spec;
          spec.rootShape = variant.root;
          spec.leafShape = variant.leaf;
          spec.groups = groups;
          spec.groupSize = groupSize;
          graph::Graph query = topo::composite(spec);
          nodes = query.nodeCount();
          if (regular) {
            topo::assignLevelDelayWindows(query, 75.0, 350.0, 1.0, 75.0);
          } else {
            util::Rng rng(util::deriveSeed(cfg.seed, groups * 100 + groupSize + rep));
            topo::assignRandomDelayWindows(query, 25.0, 175.0, 60.0, rng);
          }
          const core::Problem problem(query, host, constraints);
          for (int a = 0; a < 3; ++a) {
            core::SearchOptions options;
            options.timeout = cfg.timeout;
            options.storeLimit = 1;
            options.maxSolutions = 1;
            options.seed = rep + 1;
            stats[a].add(runAlgorithm(algos[a], problem, options).stats.searchMs);
          }
        }
        table.addRow({variant.name, std::to_string(groups) + "x" + std::to_string(groupSize),
                      std::to_string(nodes), meanCi(stats[0]), meanCi(stats[1]),
                      meanCi(stats[2])});
        csvRows.push_back({variant.name, std::to_string(nodes),
                           util::CsvWriter::field(stats[0].mean()),
                           util::CsvWriter::field(stats[1].mean()),
                           util::CsvWriter::field(stats[2].mean())});
      }
    }
    emit(regular ? "Figure 14a: composite queries, REGULAR per-level constraints "
                   "(root 75..350ms, leaf 1..75ms), first match"
                 : "Figure 14b: composite queries, IRREGULAR random windows in "
                   "25..175ms, first match",
         table, csvRows, {"shape", "n", "ecf_ms", "rwb_ms", "lns_ms"}, cfg.csv);
  }
  return 0;
}
