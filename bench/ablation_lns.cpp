// Ablation: LNS's two heuristics (paper §V-C) on/off, on the workloads
// where LNS shines — clique and composite first-match queries:
//   1. start from the maximum-degree query node,
//   2. expand the neighbour with the most links into the covered set.

#include "common.hpp"

using namespace netembed;
using namespace netembed::bench;

namespace {

graph::Graph makeQuery(const std::string& kind, std::size_t size, util::Rng& rng) {
  if (kind == "clique") return topo::cliqueQuery(size, 10.0, 100.0);
  topo::CompositeSpec spec;
  spec.groups = size;
  spec.groupSize = 5;
  graph::Graph q = topo::composite(spec);
  if (kind == "composite-regular") {
    topo::assignLevelDelayWindows(q, 75.0, 350.0, 1.0, 75.0);
  } else {
    topo::assignRandomDelayWindows(q, 25.0, 175.0, 60.0, rng);
  }
  return q;
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const BenchConfig cfg = BenchConfig::fromArgs(args, 3, 2000);

  const graph::Graph& host = planetlabHost(cfg.seed);
  const auto constraints =
      expr::ConstraintSet::edgeOnly(topo::avgDelayWindowConstraint());

  struct Case {
    std::string kind;
    std::size_t size;
  };
  std::vector<Case> cases = cfg.paper
                                ? std::vector<Case>{{"clique", 8},
                                                    {"clique", 12},
                                                    {"composite-regular", 6},
                                                    {"composite-irregular", 6}}
                                : std::vector<Case>{{"clique", 5},
                                                    {"clique", 8},
                                                    {"composite-regular", 4},
                                                    {"composite-irregular", 4}};

  util::TablePrinter table({"query", "both on (ms)", "no max-degree start (ms)",
                            "no most-links pick (ms)", "both off (ms)"});
  std::vector<std::vector<std::string>> csvRows;

  for (const Case& benchCase : cases) {
    util::RunningStats stats[4];
    for (std::size_t rep = 0; rep < cfg.reps; ++rep) {
      util::Rng rng(util::deriveSeed(cfg.seed, benchCase.size * 31 + rep));
      const graph::Graph query = makeQuery(benchCase.kind, benchCase.size, rng);
      const core::Problem problem(query, host, constraints);
      for (int variant = 0; variant < 4; ++variant) {
        core::SearchOptions options;
        options.timeout = cfg.timeout;
        options.storeLimit = 1;
        options.maxSolutions = 1;
        options.lnsMaxDegreeStart = (variant & 1) == 0;
        options.lnsMostConnectedNeighbor = (variant & 2) == 0;
        stats[variant].add(core::lnsSearch(problem, options).stats.searchMs);
      }
    }
    const std::string label = benchCase.kind + "-" + std::to_string(benchCase.size);
    table.addRow({label, meanCi(stats[0]), meanCi(stats[1]), meanCi(stats[2]),
                  meanCi(stats[3])});
    csvRows.push_back({label, util::CsvWriter::field(stats[0].mean()),
                       util::CsvWriter::field(stats[1].mean()),
                       util::CsvWriter::field(stats[2].mean()),
                       util::CsvWriter::field(stats[3].mean())});
  }

  emit("Ablation: LNS heuristics on/off (first match, PlanetLab)", table, csvRows,
       {"query", "both_on_ms", "no_start_ms", "no_pick_ms", "both_off_ms"}, cfg.csv);
  return 0;
}
