// micro_async_batch — plan-cache amortization for batched submission.
//
// A batch of same-signature first-match queries against one model version
// needs exactly one stage-1 FilterMatrix build; everything after the first
// request rides the shared plan. Three variants over the same batch:
//
//   serial_nocache  N x NetEmbedService::submit with the plan cache disabled
//                   (the pre-PR behavior: one build per query)
//   serial_cached   N x submit with the cache on (1 build, same thread)
//   async_batch     N x AsyncNetEmbedService::submitAsync (1 build, and the
//                   post-build searches overlap across scheduler workers)
//
// The build counter (core::filterPlanBuilds) verifies the sharing; the bench
// exits non-zero when a cached batch performs more than one build, so CI can
// smoke-run it as an acceptance check.

#include "common.hpp"

#include "core/plan.hpp"
#include "service/async.hpp"
#include "service/service.hpp"
#include "util/timer.hpp"

#include <future>

using namespace netembed;
using namespace netembed::bench;

namespace {

struct Run {
  double totalMs = 0.0;
  std::uint64_t planBuilds = 0;
  std::uint64_t feasible = 0;
};

service::EmbedRequest batchRequest(const graph::Graph& host, std::size_t queryNodes,
                                   std::uint64_t seed) {
  util::Rng rng(seed);
  service::EmbedRequest request;
  request.query = sampledDelayQuery(host, queryNodes, queryNodes * 2, 0.02, rng);
  request.edgeConstraint = topo::delayWindowConstraint();
  request.options.maxSolutions = 1;
  request.options.storeLimit = 1;
  // Pin a plan-using engine: the batch measures plan sharing, not the
  // chooser. (ECF and RWB share plans; LNS never builds one.)
  request.algorithm = core::Algorithm::ECF;
  return request;
}

template <class Submit>
Run timedBatch(std::size_t batchSize, const Submit& submit) {
  Run run;
  const std::uint64_t buildsBefore = core::filterPlanBuilds();
  util::Stopwatch clock;
  run.feasible = submit(batchSize);
  run.totalMs = clock.elapsedMs();
  run.planBuilds = core::filterPlanBuilds() - buildsBefore;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const BenchConfig cfg = BenchConfig::fromArgs(args, 3, 5000);
  const auto batchSize =
      static_cast<std::size_t>(args.getInt("batch", cfg.paper ? 32 : 8));

  const std::vector<std::size_t> hostSizes =
      cfg.paper ? std::vector<std::size_t>{600, 1500} : std::vector<std::size_t>{400};

  util::TablePrinter table({"host N", "query N", "batch", "serial nocache (ms)",
                            "serial cached (ms)", "async batch (ms)",
                            "builds nocache/cached/async", "speedup"});
  std::vector<std::vector<std::string>> csvRows;
  bool sharingHeld = true;

  for (const std::size_t hostSize : hostSizes) {
    topo::BriteOptions bo;
    bo.nodes = hostSize;
    bo.m = 2;
    bo.seed = util::deriveSeed(cfg.seed, hostSize);
    const graph::Graph host = topo::brite(bo);
    const std::size_t queryNodes = hostSize / 3;

    util::RunningStats noCacheMs, cachedMs, asyncMs;
    std::uint64_t noCacheBuilds = 0, cachedBuilds = 0, asyncBuilds = 0;

    for (std::size_t rep = 0; rep < cfg.reps; ++rep) {
      const service::EmbedRequest request =
          batchRequest(host, queryNodes, util::deriveSeed(cfg.seed, rep + 1));

      const Run noCache = timedBatch(batchSize, [&](std::size_t n) {
        service::NetEmbedService svc(host, /*planCacheCapacity=*/0);
        std::uint64_t feasible = 0;
        for (std::size_t i = 0; i < n; ++i) {
          feasible += svc.submit(request).result.feasible() ? 1 : 0;
        }
        return feasible;
      });

      const Run cached = timedBatch(batchSize, [&](std::size_t n) {
        service::NetEmbedService svc(host);
        std::uint64_t feasible = 0;
        for (std::size_t i = 0; i < n; ++i) {
          feasible += svc.submit(request).result.feasible() ? 1 : 0;
        }
        return feasible;
      });

      const Run async = timedBatch(batchSize, [&](std::size_t n) {
        service::AsyncNetEmbedService svc{graph::Graph(host)};
        std::vector<std::future<service::EmbedResponse>> futures;
        futures.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
          futures.push_back(svc.submitAsync(request));
        }
        std::uint64_t feasible = 0;
        for (auto& future : futures) {
          feasible += future.get().result.feasible() ? 1 : 0;
        }
        return feasible;
      });

      noCacheMs.add(noCache.totalMs);
      cachedMs.add(cached.totalMs);
      asyncMs.add(async.totalMs);
      noCacheBuilds = noCache.planBuilds;
      cachedBuilds = cached.planBuilds;
      asyncBuilds = async.planBuilds;
      if (cached.planBuilds != 1 || async.planBuilds != 1) sharingHeld = false;
      if (noCache.feasible != batchSize || cached.feasible != batchSize ||
          async.feasible != batchSize) {
        std::cout << "WARNING: not every batch query was feasible\n";
      }
    }

    const double speedup =
        asyncMs.mean() > 0.0 ? noCacheMs.mean() / asyncMs.mean() : 0.0;
    const std::string builds = std::to_string(noCacheBuilds) + "/" +
                               std::to_string(cachedBuilds) + "/" +
                               std::to_string(asyncBuilds);
    table.addRow({std::to_string(hostSize), std::to_string(queryNodes),
                  std::to_string(batchSize), meanCi(noCacheMs), meanCi(cachedMs),
                  meanCi(asyncMs), builds, util::formatFixed(speedup, 2) + "x"});
    csvRows.push_back({std::to_string(hostSize), std::to_string(queryNodes),
                       std::to_string(batchSize),
                       util::CsvWriter::field(noCacheMs.mean()),
                       util::CsvWriter::field(cachedMs.mean()),
                       util::CsvWriter::field(asyncMs.mean()),
                       std::to_string(noCacheBuilds), std::to_string(cachedBuilds),
                       std::to_string(asyncBuilds)});
  }

  emit("micro: batched submission with a shared FilterMatrix plan cache", table,
       csvRows,
       {"host_n", "query_n", "batch", "serial_nocache_ms", "serial_cached_ms",
        "async_batch_ms", "builds_nocache", "builds_cached", "builds_async"},
       cfg.csv);

  if (!sharingHeld) {
    std::cout << "FAIL: a cached batch performed more than one stage-1 build\n";
    return 1;
  }
  std::cout << "OK: every cached batch shared exactly one stage-1 plan build\n";
  return 0;
}
