// micro_async_batch — plan-cache amortization for batched submission, plus a
// QoS saturation scenario.
//
// A batch of same-signature first-match queries against one model version
// needs exactly one stage-1 FilterMatrix build; everything after the first
// request rides the shared plan. Three variants over the same batch:
//
//   serial_nocache  N x NetEmbedService::submit with the plan cache disabled
//                   (the pre-PR behavior: one build per query)
//   serial_cached   N x submit with the cache on (1 build, same thread)
//   async_batch     N x AsyncNetEmbedService::submitAsync (1 build, and the
//                   post-build searches overlap across scheduler workers)
//
// The build counter (core::filterPlanBuilds) verifies the sharing; the bench
// exits non-zero when a cached batch performs more than one build, so CI can
// smoke-run it as an acceptance check.
//
// The saturation scenario then drives the ticket API into overload: a
// bounded admission queue (capacity << batch) under ShedLowestPriority with
// mixed priority classes and two tenants. It reports per-submit admission
// latency and the shed/completed split, and exits non-zero if any ticket
// fails to resolve or the drop accounting does not add up — the smoke check
// the Release CI job runs.

#include "common.hpp"

#include "core/plan.hpp"
#include "service/async.hpp"
#include "service/service.hpp"
#include "service/ticket.hpp"
#include "util/timer.hpp"

#include <climits>
#include <future>

using namespace netembed;
using namespace netembed::bench;

namespace {

struct Run {
  double totalMs = 0.0;
  std::uint64_t planBuilds = 0;
  std::uint64_t feasible = 0;
};

service::EmbedRequest batchRequest(const graph::Graph& host, std::size_t queryNodes,
                                   std::uint64_t seed) {
  util::Rng rng(seed);
  service::EmbedRequest request;
  request.query = sampledDelayQuery(host, queryNodes, queryNodes * 2, 0.02, rng);
  request.edgeConstraint = topo::delayWindowConstraint();
  request.options.maxSolutions = 1;
  request.options.storeLimit = 1;
  // Pin a plan-using engine: the batch measures plan sharing, not the
  // chooser. (ECF and RWB share plans; LNS never builds one.)
  request.algorithm = core::Algorithm::ECF;
  return request;
}

template <class Submit>
Run timedBatch(std::size_t batchSize, const Submit& submit) {
  Run run;
  const std::uint64_t buildsBefore = core::filterPlanBuilds();
  util::Stopwatch clock;
  run.feasible = submit(batchSize);
  run.totalMs = clock.elapsedMs();
  run.planBuilds = core::filterPlanBuilds() - buildsBefore;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const BenchConfig cfg = BenchConfig::fromArgs(args, 3, 5000);
  const auto batchSize =
      static_cast<std::size_t>(args.getInt("batch", cfg.paper ? 32 : 8));

  const std::vector<std::size_t> hostSizes =
      cfg.paper ? std::vector<std::size_t>{600, 1500} : std::vector<std::size_t>{400};

  util::TablePrinter table({"host N", "query N", "batch", "serial nocache (ms)",
                            "serial cached (ms)", "async batch (ms)",
                            "builds nocache/cached/async", "speedup"});
  std::vector<std::vector<std::string>> csvRows;
  bool sharingHeld = true;

  for (const std::size_t hostSize : hostSizes) {
    topo::BriteOptions bo;
    bo.nodes = hostSize;
    bo.m = 2;
    bo.seed = util::deriveSeed(cfg.seed, hostSize);
    const graph::Graph host = topo::brite(bo);
    const std::size_t queryNodes = hostSize / 3;

    util::RunningStats noCacheMs, cachedMs, asyncMs;
    std::uint64_t noCacheBuilds = 0, cachedBuilds = 0, asyncBuilds = 0;

    for (std::size_t rep = 0; rep < cfg.reps; ++rep) {
      const service::EmbedRequest request =
          batchRequest(host, queryNodes, util::deriveSeed(cfg.seed, rep + 1));

      const Run noCache = timedBatch(batchSize, [&](std::size_t n) {
        service::NetEmbedService svc(host, /*planCacheCapacity=*/0);
        std::uint64_t feasible = 0;
        for (std::size_t i = 0; i < n; ++i) {
          feasible += svc.submit(request).result.feasible() ? 1 : 0;
        }
        return feasible;
      });

      const Run cached = timedBatch(batchSize, [&](std::size_t n) {
        service::NetEmbedService svc(host);
        std::uint64_t feasible = 0;
        for (std::size_t i = 0; i < n; ++i) {
          feasible += svc.submit(request).result.feasible() ? 1 : 0;
        }
        return feasible;
      });

      const Run async = timedBatch(batchSize, [&](std::size_t n) {
        service::AsyncNetEmbedService svc{graph::Graph(host)};
        std::vector<std::future<service::EmbedResponse>> futures;
        futures.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
          futures.push_back(svc.submitAsync(request));
        }
        std::uint64_t feasible = 0;
        for (auto& future : futures) {
          feasible += future.get().result.feasible() ? 1 : 0;
        }
        return feasible;
      });

      noCacheMs.add(noCache.totalMs);
      cachedMs.add(cached.totalMs);
      asyncMs.add(async.totalMs);
      noCacheBuilds = noCache.planBuilds;
      cachedBuilds = cached.planBuilds;
      asyncBuilds = async.planBuilds;
      if (cached.planBuilds != 1 || async.planBuilds != 1) sharingHeld = false;
      if (noCache.feasible != batchSize || cached.feasible != batchSize ||
          async.feasible != batchSize) {
        std::cout << "WARNING: not every batch query was feasible\n";
      }
    }

    const double speedup =
        asyncMs.mean() > 0.0 ? noCacheMs.mean() / asyncMs.mean() : 0.0;
    const std::string builds = std::to_string(noCacheBuilds) + "/" +
                               std::to_string(cachedBuilds) + "/" +
                               std::to_string(asyncBuilds);
    table.addRow({std::to_string(hostSize), std::to_string(queryNodes),
                  std::to_string(batchSize), meanCi(noCacheMs), meanCi(cachedMs),
                  meanCi(asyncMs), builds, util::formatFixed(speedup, 2) + "x"});
    csvRows.push_back({std::to_string(hostSize), std::to_string(queryNodes),
                       std::to_string(batchSize),
                       util::CsvWriter::field(noCacheMs.mean()),
                       util::CsvWriter::field(cachedMs.mean()),
                       util::CsvWriter::field(asyncMs.mean()),
                       std::to_string(noCacheBuilds), std::to_string(cachedBuilds),
                       std::to_string(asyncBuilds)});
  }

  emit("micro: batched submission with a shared FilterMatrix plan cache", table,
       csvRows,
       {"host_n", "query_n", "batch", "serial_nocache_ms", "serial_cached_ms",
        "async_batch_ms", "builds_nocache", "builds_cached", "builds_async"},
       cfg.csv);

  // --- saturation: queue at capacity, mixed priorities, shed accounting ----
  const auto satBatch =
      static_cast<std::size_t>(args.getInt("sat-batch", cfg.paper ? 64 : 24));
  const std::size_t satCapacity = 4;
  bool saturationHeld = true;
  {
    topo::BriteOptions bo;
    bo.nodes = 300;
    bo.m = 2;
    bo.seed = util::deriveSeed(cfg.seed, 777);
    const graph::Graph host = topo::brite(bo);
    const service::EmbedRequest base =
        batchRequest(host, 100, util::deriveSeed(cfg.seed, 778));

    service::AsyncServiceOptions options;
    options.workers = 2;
    options.queueCapacity = satCapacity;
    options.overloadPolicy = util::OverloadPolicy::ShedLowestPriority;
    service::AsyncNetEmbedService svc{graph::Graph(host), options};
    svc.setTenantWeight(1, 3.0);
    svc.setTenantWeight(2, 1.0);

    util::RunningStats admitMs;
    double admitMaxMs = 0.0;
    std::vector<service::SubmitTicket> tickets;
    tickets.reserve(satBatch);
    constexpr service::Priority kPriorities[] = {
        service::Priority::Low, service::Priority::Normal, service::Priority::High};
    for (std::size_t i = 0; i < satBatch; ++i) {
      service::EmbedRequest request = base;
      request.qos.priority = kPriorities[i % 3];
      request.qos.tenant = 1 + i % 2;
      util::Stopwatch admitClock;
      tickets.push_back(svc.submit(std::move(request)));
      const double ms = admitClock.elapsedMs();
      admitMs.add(ms);
      admitMaxMs = std::max(admitMaxMs, ms);
    }
    svc.drain();

    std::size_t done = 0, refused = 0, preempted = 0, other = 0;
    for (service::SubmitTicket& ticket : tickets) {
      auto& future = ticket.future();
      if (future.wait_for(std::chrono::seconds(60)) != std::future_status::ready) {
        saturationHeld = false;  // a ticket that never resolves is the bug
        ++other;
        continue;
      }
      switch (future.get().status) {
        case service::RequestStatus::Done: ++done; break;
        case service::RequestStatus::Rejected: ++refused; break;
        case service::RequestStatus::Preempted: ++preempted; break;
        default: ++other; break;
      }
    }
    const auto queueStats = svc.queueStats();
    if (done + refused != satBatch || other != 0) saturationHeld = false;
    // Preemption is off in this scenario; the status must not appear.
    if (preempted != 0) saturationHeld = false;
    if (queueStats.shed != refused) saturationHeld = false;
    // Queue-wait percentiles come from the scheduler's reservoir: every
    // admitted job that reached a worker must have been sampled, and under
    // saturation the p99 wait dominates the submit-side admit latency.
    if (queueStats.admissionWaitSamples != done) saturationHeld = false;
    if (queueStats.admissionWaitP99Ms < queueStats.admissionWaitP50Ms) {
      saturationHeld = false;
    }
    // The per-class breakdown must tile the totals: every completion and
    // every wait sample belongs to exactly one priority class.
    std::uint64_t classCompleted = 0, classWaits = 0;
    int lastPriority = INT_MIN;
    for (const auto& cls : queueStats.classes) {
      classCompleted += cls.completed;
      classWaits += cls.waitSamples;
      if (cls.priority <= lastPriority) saturationHeld = false;  // ascending
      lastPriority = cls.priority;
      if (cls.completed > 0 && cls.serviceEwmaMs <= 0.0) saturationHeld = false;
    }
    if (classCompleted != queueStats.completed) saturationHeld = false;
    if (classWaits != queueStats.admissionWaitSamples) saturationHeld = false;

    util::TablePrinter satTable({"batch", "capacity", "done", "shed",
                                 "admit mean (ms)", "admit max (ms)",
                                 "wait p50 (ms)", "wait p99 (ms)"});
    satTable.addRow({std::to_string(satBatch), std::to_string(satCapacity),
                     std::to_string(done), std::to_string(refused),
                     util::formatFixed(admitMs.mean(), 3),
                     util::formatFixed(admitMaxMs, 3),
                     util::formatFixed(queueStats.admissionWaitP50Ms, 3),
                     util::formatFixed(queueStats.admissionWaitP99Ms, 3)});
    emit("micro: QoS saturation (bounded queue, mixed priorities, shed policy)",
         satTable,
         {{std::to_string(satBatch), std::to_string(satCapacity),
           std::to_string(done), std::to_string(refused),
           util::CsvWriter::field(admitMs.mean()),
           util::CsvWriter::field(admitMaxMs),
           util::CsvWriter::field(queueStats.admissionWaitP50Ms),
           util::CsvWriter::field(queueStats.admissionWaitP99Ms)}},
         {"sat_batch", "queue_capacity", "done", "shed", "admit_mean_ms",
          "admit_max_ms", "wait_p50_ms", "wait_p99_ms"},
         cfg.csv);
  }

  if (!sharingHeld) {
    std::cout << "FAIL: a cached batch performed more than one stage-1 build\n";
    return 1;
  }
  if (!saturationHeld) {
    std::cout << "FAIL: saturation scenario lost a request (done + shed != "
                 "batch, or a ticket never resolved)\n";
    return 1;
  }
  std::cout << "OK: every cached batch shared exactly one stage-1 plan build; "
               "saturation resolved every ticket (done + shed == batch)\n";
  return 0;
}
