// Embedding a network experiment into a shared testbed (the Emulab /
// PlanetLab use case of §I): the experimenter describes the desired
// topology in GraphML — including OS requirements and one node pinned to a
// specific site via the isBoundTo() mechanism of §VI-B — and the service
// finds placements, negotiating looser delay bounds when the strict request
// is infeasible.
//
//   $ ./testbed_experiment [--seed N] [--out DIR]

#include <fstream>
#include <iostream>

#include "netembed/netembed.hpp"
#include "util/cli.hpp"

using namespace netembed;

namespace {

/// The experiment: a 6-node dumbbell (two LAN triangles joined by a WAN
/// link) with per-link delay windows and per-node software requirements.
graph::Graph buildExperiment(const graph::Graph& host) {
  graph::Graph q;
  const auto l1 = q.addNode("left-router");
  const auto l2 = q.addNode("left-client1");
  const auto l3 = q.addNode("left-client2");
  const auto r1 = q.addNode("right-router");
  const auto r2 = q.addNode("right-server1");
  const auto r3 = q.addNode("right-server2");

  const auto lan = [&](graph::NodeId a, graph::NodeId b) {
    auto& attrs = q.edgeAttrs(q.addEdge(a, b));
    attrs.set("minDelay", 0.0);
    attrs.set("maxDelay", 40.0);
  };
  lan(l1, l2);
  lan(l1, l3);
  lan(l2, l3);
  lan(r1, r2);
  lan(r1, r3);
  lan(r2, r3);
  auto& wan = q.edgeAttrs(q.addEdge(l1, r1));
  wan.set("minDelay", 60.0);
  wan.set("maxDelay", 250.0);

  // Servers need a specific OS; clients take anything.
  q.nodeAttrs(r2).set("osType", "linux-2.6");
  q.nodeAttrs(r3).set("osType", "linux-2.6");
  // Pin the left router to a concrete site (special hardware there).
  q.nodeAttrs(l1).set("bindTo", host.nodeName(17));
  return q;
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const auto seed = args.getSeed("seed", 42);
  const std::string outDir = args.getString("out", "/tmp");

  trace::PlanetLabOptions traceOptions;
  traceOptions.seed = seed;
  graph::Graph host = trace::synthesize(traceOptions);
  host.nodeAttrs(17).set("name", host.nodeName(17));  // expose name as an attr
  for (graph::NodeId n = 0; n < host.nodeCount(); ++n) {
    host.nodeAttrs(n).set("name", host.nodeName(n));
  }

  const graph::Graph experiment = buildExperiment(host);

  // The experiment travels as GraphML, like any NETEMBED query would.
  const std::string path = outDir + "/experiment.graphml";
  graphml::writeFile(experiment, path);
  const graph::Graph query = graphml::readFile(path);
  std::cout << "experiment written to and reloaded from " << path << " ("
            << query.nodeCount() << " nodes, " << query.edgeCount() << " edges)\n";

  service::NetEmbedService svc{service::NetworkModel(std::move(host))};

  service::EmbedRequest request;
  request.query = query;
  request.edgeConstraint =
      "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay";
  request.nodeConstraint =
      "isBoundTo(vNode.osType, rNode.osType) && isBoundTo(vNode.bindTo, rNode.name)";
  request.options.maxSolutions = 1;
  request.options.timeout = std::chrono::milliseconds(5000);

  service::EmbedResponse response = svc.submit(request);
  std::cout << "service says: " << response.diagnostics << " (algorithm "
            << core::algorithmName(response.algorithmUsed) << ")\n";

  if (!response.result.feasible()) {
    // Interactive negotiation (§VI-B): relax delay windows until a mapping
    // appears or the experimenter's tolerance is exhausted.
    std::cout << "strict request infeasible; negotiating...\n";
    const auto negotiated = svc.negotiate(request, 0.25, 1.0);
    if (!negotiated.feasible) {
      std::cout << "no placement even at +100% tolerance; giving up\n";
      return 1;
    }
    std::cout << "feasible at tolerance " << negotiated.toleranceUsed << " after "
              << negotiated.rounds << " round(s)\n";
    response = negotiated.response;
  }

  const core::Mapping& m = response.result.mappings.front();
  for (graph::NodeId v = 0; v < query.nodeCount(); ++v) {
    std::cout << "  " << query.nodeName(v) << " -> " << svc.model().host().nodeName(m[v])
              << " (" << svc.model().host().nodeAttrs(m[v]).at("osType").asString()
              << ")\n";
  }

  // The pinned node must have landed on site17.
  if (svc.model().host().nodeName(m[0]) != "site17") {
    std::cerr << "BUG: bindTo constraint not honored\n";
    return 1;
  }
  std::cout << "bindTo pin honored (left-router @ site17)\n";
  return 0;
}
