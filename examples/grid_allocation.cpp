// Grid resource allocation with reservations and scheduling (paper §III's
// grid scenario and §VIII's scheduling extension): jobs request a ring of
// workers with CPU demands; the service finds placements, reserves
// capacity, and when the infrastructure is full the scheduler finds the
// earliest future window instead.
//
//   $ ./grid_allocation [--seed N] [--jobs K]

#include <iostream>

#include "netembed/netembed.hpp"
#include "util/cli.hpp"

using namespace netembed;

namespace {

graph::Graph makeJob(std::size_t workers, double cpuDemand, double maxLinkDelay) {
  graph::Graph q = topo::ring(workers);
  topo::setAllNodes(q, "cpu", cpuDemand);
  topo::setAllNodes(q, "demand", cpuDemand);  // for the scheduler
  topo::setAllEdges(q, "maxDelay", maxLinkDelay);
  return q;
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const auto seed = args.getSeed("seed", 42);
  const auto jobs = static_cast<std::size_t>(args.getInt("jobs", 6));

  // Hosting grid: a BRITE-like AS topology with per-node CPU capacity.
  topo::BriteOptions briteOptions;
  briteOptions.nodes = 120;
  briteOptions.m = 3;
  briteOptions.seed = seed;
  graph::Graph host = topo::brite(briteOptions);
  util::Rng rng(seed);
  for (graph::NodeId n = 0; n < host.nodeCount(); ++n) {
    host.nodeAttrs(n).set("cpu", static_cast<double>(rng.uniformInt(2, 6)));
    host.nodeAttrs(n).set("capacity", host.nodeAttrs(n).at("cpu").asDouble());
  }
  std::cout << "grid: " << host.nodeCount() << " nodes, " << host.edgeCount()
            << " links\n";

  service::NetEmbedService svc{service::NetworkModel(host)};

  service::EmbedRequest request;
  request.edgeConstraint = "rEdge.avgDelay <= vEdge.maxDelay";
  request.nodeConstraint = "vNode.cpu <= rNode.cpu";
  request.options.maxSolutions = 1;
  request.options.timeout = std::chrono::milliseconds(2000);

  service::NetworkModel::ReservationSpec spec;
  spec.nodeCapacityAttrs = {"cpu"};

  // Admit jobs until the grid can't take more; reservations shrink the
  // advertised capacities so later jobs see the residual grid.
  std::vector<service::NetEmbedService::Allocation> admitted;
  for (std::size_t job = 0; job < jobs; ++job) {
    request.query = makeJob(4, 2.0, 120.0);
    const auto allocation = svc.allocateFirstFeasible(request, spec);
    if (allocation) {
      std::cout << "job " << job << ": admitted, workers at";
      for (const graph::NodeId r : allocation->mapping) {
        std::cout << " " << svc.model().host().nodeName(r);
      }
      std::cout << '\n';
      admitted.push_back(*allocation);
    } else {
      std::cout << "job " << job << ": no capacity now -> scheduling a window\n";
      // Fall back to the time-slotted scheduler against the *original*
      // capacities: find the earliest slot where the ring fits.
      service::EmbeddingScheduler scheduler(host);
      // Pre-book the admitted jobs as occupying [0, 10).
      for (std::size_t k = 0; k < admitted.size(); ++k) {
        graph::Graph q = makeJob(4, 2.0, 120.0);
        (void)scheduler.schedule(q, request.edgeConstraint, 10, 0);
      }
      graph::Graph q = makeJob(4, 2.0, 120.0);
      const auto placement = scheduler.schedule(q, request.edgeConstraint, 10, 50);
      if (placement) {
        std::cout << "  scheduled at t=" << placement->start << " for "
                  << placement->duration << " slots\n";
      } else {
        std::cout << "  does not fit within the horizon\n";
      }
    }
  }
  std::cout << "active reservations: " << svc.model().activeReservations() << '\n';

  // Jobs finish: release everything and confirm capacity is restored.
  for (const auto& allocation : admitted) svc.model().release(allocation.reservation);
  double totalCpu = 0.0;
  for (graph::NodeId n = 0; n < svc.model().host().nodeCount(); ++n) {
    totalCpu += svc.model().host().nodeAttrs(n).getDouble("cpu", 0.0);
  }
  double originalCpu = 0.0;
  for (graph::NodeId n = 0; n < host.nodeCount(); ++n) {
    originalCpu += host.nodeAttrs(n).getDouble("cpu", 0.0);
  }
  std::cout << "released all reservations; capacity restored: "
            << (totalCpu == originalCpu ? "yes" : "NO (bug)") << '\n';
  return totalCpu == originalCpu ? 0 : 1;
}
