// Quickstart: build a hosting network, describe a query network with delay
// constraints, and ask NETEMBED for feasible embeddings.
//
//   $ ./quickstart
//
// Walks through the whole public API surface in ~80 lines: graph
// construction, constraint expressions, the three engines, verification.

#include <iostream>

#include "netembed/netembed.hpp"

using namespace netembed;

int main() {
  // --- 1. The hosting network: a small "testbed" with measured delays -----
  graph::Graph host;
  const auto bos = host.addNode("boston");
  const auto nyc = host.addNode("nyc");
  const auto chi = host.addNode("chicago");
  const auto sfo = host.addNode("sf");
  const auto sea = host.addNode("seattle");

  const auto link = [&](graph::NodeId a, graph::NodeId b, double delayMs) {
    host.edgeAttrs(host.addEdge(a, b)).set("delay", delayMs);
  };
  link(bos, nyc, 8.0);
  link(nyc, chi, 22.0);
  link(chi, sfo, 50.0);
  link(sfo, sea, 20.0);
  link(bos, chi, 28.0);
  link(nyc, sfo, 70.0);
  link(chi, sea, 55.0);

  // --- 2. The query network: a 3-node relay chain with delay budgets ------
  graph::Graph query;
  const auto src = query.addNode("source");
  const auto relay = query.addNode("relay");
  const auto sink = query.addNode("sink");
  query.edgeAttrs(query.addEdge(src, relay)).set("maxDelay", 30.0);
  query.edgeAttrs(query.addEdge(relay, sink)).set("maxDelay", 60.0);

  // --- 3. The constraint expression (paper §VI-B language) ----------------
  const auto constraints =
      expr::ConstraintSet::edgeOnly("rEdge.delay <= vEdge.maxDelay");

  // --- 4. Enumerate ALL feasible embeddings with ECF ----------------------
  const core::Problem problem(query, host, constraints);
  core::SearchOptions options;
  options.storeLimit = 100;
  const core::EmbedResult all = core::ecfSearch(problem, options);

  std::cout << "ECF: " << core::outcomeName(all.outcome) << ", "
            << all.solutionCount << " feasible embedding(s)\n";
  for (const core::Mapping& m : all.mappings) {
    std::cout << "  " << core::formatMapping(m, query, host) << '\n';
  }

  // --- 5. First match with RWB and LNS ------------------------------------
  core::SearchOptions first;
  first.maxSolutions = 1;
  first.seed = 7;
  const auto rwb = core::rwbSearch(problem, first);
  const auto lns = core::lnsSearch(problem, first);
  if (rwb.feasible()) {
    std::cout << "RWB first match: " << core::formatMapping(rwb.mappings[0], query, host)
              << '\n';
  }
  if (lns.feasible()) {
    std::cout << "LNS first match: " << core::formatMapping(lns.mappings[0], query, host)
              << '\n';
  }

  // --- 6. Every returned mapping can be independently audited -------------
  for (const core::Mapping& m : all.mappings) {
    const auto verdict = core::verifyMapping(problem, m);
    if (!verdict.ok) {
      std::cerr << "BUG: invalid mapping: " << verdict.reason << '\n';
      return 1;
    }
  }
  std::cout << "all mappings verified OK\n";

  // --- 7. Round-trip the networks through GraphML (paper §VI-A) -----------
  const std::string xml = graphml::write(query);
  const graph::Graph back = graphml::read(xml);
  std::cout << "GraphML round-trip: " << back.nodeCount() << " nodes, "
            << back.edgeCount() << " edges\n";
  return 0;
}
