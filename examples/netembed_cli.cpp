// netembed_cli — the embedding service as a command-line tool.
//
// Feed it a hosting network (GraphML or all-pairs-ping text) and a query
// network (GraphML), plus constraint expressions, and it prints feasible
// mappings. This is the "integrated service" face of the paper (§III/Fig 1)
// for scripted use.
//
//   # find 3 embeddings of query.graphml into a synthetic PlanetLab trace
//   $ ./netembed_cli --query q.graphml --max 3
//           --edge-constraint "rEdge.avgDelay <= vEdge.maxDelay"
//     (one shell command, wrapped here for width)
//
//   # explicit host file + algorithm + CSV of the mappings
//   $ ./netembed_cli --host trace.ping --query q.graphml --algo lns --csv
//
//   # generate a dynamic workload, then replay it with the live scorecard
//   $ ./netembed_cli --gen-trace w.csv --gen burst --arrivals 128
//   $ ./netembed_cli --trace w.csv
//
// Run `netembed_cli --help` for the full flag table (the kFlags array below
// is the single source of truth — every flag the parser reads is documented
// there).
//
// Three modes:
//  * default: one query through the ticket API (submitTicketed) — mappings
//    stream to stderr as the search finds them, the terminal
//    status/diagnostics line reports the request's lifecycle outcome.
//  * --mutate-rate > 0: replay mode — queries through the queued
//    AsyncNetEmbedService interleaved with monitoring-style host mutations;
//    reports plan-cache / control-plane / fault-tolerance counters.
//  * --trace FILE: dynamic-workload mode — replay a sim::Trace CSV
//    (arrivals with lifetimes, departures, mutations) through the
//    sim::Driver and print the VNE scorecard; --gen-trace writes such a
//    file from the seeded generators.

#include <atomic>
#include <fstream>
#include <iostream>
#include <sstream>

#include "netembed/netembed.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/simd.hpp"

using namespace netembed;

namespace {

graph::Graph loadHost(const std::string& path, std::uint64_t seed) {
  if (path.empty()) {
    trace::PlanetLabOptions options;
    options.seed = seed;
    return trace::synthesize(options);
  }
  if (path.size() > 8 && path.substr(path.size() - 8) == ".graphml") {
    return graphml::readFile(path);
  }
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open host file '" + path + "'");
  return trace::readAllPairsPing(in);
}

service::Priority parsePriority(const std::string& name) {
  if (name == "low") return service::Priority::Low;
  if (name == "normal") return service::Priority::Normal;
  if (name == "high") return service::Priority::High;
  throw std::runtime_error("unknown --priority '" + name + "' (low|normal|high)");
}

core::Ordering parseOrdering(const std::string& name) {
  if (name == "static") return core::Ordering::Static;
  if (name == "dynamic") return core::Ordering::Dynamic;
  if (name == "auto") return core::Ordering::Auto;
  throw std::runtime_error("unknown --ordering '" + name +
                           "' (static|dynamic|auto)");
}

std::optional<core::Algorithm> parseAlgo(const std::string& name) {
  if (name == "ecf") return core::Algorithm::ECF;
  if (name == "rwb") return core::Algorithm::RWB;
  if (name == "lns") return core::Algorithm::LNS;
  if (name == "naive") return core::Algorithm::Naive;
  if (name == "anneal") return core::Algorithm::Anneal;
  if (name == "genetic") return core::Algorithm::Genetic;
  if (name == "portfolio") return core::Algorithm::Portfolio;
  if (name == "auto") return std::nullopt;
  throw std::runtime_error("unknown --algo '" + name +
                           "' (ecf|rwb|lns|naive|anneal|genetic|portfolio|auto)");
}

struct FlagDoc {
  const char* flag;
  const char* arg;
  const char* def;
  const char* what;
};

/// Every flag main() reads, one row each. --help renders this array as one
/// generated table, so the documentation cannot drift from the parser.
constexpr FlagDoc kFlags[] = {
    {"--help", "", "", "print this flag table and exit"},
    {"--host", "FILE", "synthetic PlanetLab",
     "hosting network (.graphml or all-pairs-ping text)"},
    {"--query", "FILE", "", "query network (.graphml); required unless --demo"},
    {"--demo", "", "off", "use a built-in demo query sampled from the host"},
    {"--node-constraint", "EXPR", "none", "expression over vNode/rNode"},
    {"--edge-constraint", "EXPR", "none (demo: delay window)",
     "expression over vEdge/rEdge/vSource/..."},
    {"--algo", "NAME", "auto",
     "ecf|rwb|lns|naive|anneal|genetic|portfolio|auto (auto races the portfolio)"},
    {"--max", "N", "1", "stop after N mappings (0 = all)"},
    {"--ordering", "MODE", "auto",
     "variable order: static (the paper's Lemma-1 order) | dynamic "
     "(re-picks the smallest live domain each depth) | auto (picks dynamic "
     "when the stage-1 viable counts are near-uniform — the shape where "
     "static ties hide a bottleneck)"},
    {"--shards", "N", "1",
     "host-node shards for the filter matrix (<= 64; 0 = one per hardware "
     "thread). Sharding skips whole shard-pair buckets of the stage-1 sweep "
     "and restricts search intersections to live shards; pure perf knob — "
     "solutions are byte-identical to --shards 1"},
    {"--timeout", "MS", "10000", "search budget"},
    {"--seed", "N", "42", "RNG seed (host synthesis, demo sampling, traces)"},
    {"--csv", "", "off", "machine-readable mapping output"},
    {"--priority", "P", "normal", "QoS class: low|normal|high"},
    {"--deadline-ms", "MS", "0 (none)",
     "QoS admission deadline + compute budget (tightens --timeout, never widens)"},
    {"--tenant", "N", "0", "QoS fair-queueing tenant id"},
    {"--retry", "N", "1",
     "QoS retry budget: total dispatch attempts on transient failure, with "
     "exponential backoff (1 = no retries); also the trace-mode retry knob"},
    {"--mutate-rate", "R", "0 (off)",
     "replay mode: run --replay queries through the queued service with R "
     "monitoring-style host mutations before each (half delay-relevant, half "
     "unreferenced); reports plan-cache patch/reuse/rebuild counters"},
    {"--replay", "N", "8", "replay mode: queries per run"},
    {"--adaptive", "", "off",
     "replay/trace mode: adaptive admission capacity (per-class service-time "
     "EWMAs via Little's law + low-priority shed watermark)"},
    {"--target-delay-ms", "MS", "250",
     "queue delay the adaptive capacity aims for (needs --adaptive)"},
    {"--slack", "", "off",
     "replay/trace mode: convert remaining admission slack into the compute "
     "budget at dispatch"},
    {"--preempt", "", "off",
     "replay/trace mode: High-class work preempts the longest-running "
     "lower-class search (re-queued, not resolved Preempted)"},
    {"--trace", "FILE", "",
     "dynamic-workload mode: replay a sim trace CSV through sim::Driver and "
     "print the VNE scorecard"},
    {"--wall", "", "off",
     "trace mode: scaled wall clock with real service concurrency "
     "(default: deterministic virtual clock)"},
    {"--buckets", "N", "8", "trace mode: scorecard time buckets"},
    {"--cpu-capacity", "X", "16",
     "trace mode: per-node cpu capacity (default host, or stamped onto a "
     "--host file lacking a cpu attribute)"},
    {"--bw-capacity", "X", "24",
     "trace mode: per-edge bw capacity (same stamping rule)"},
    {"--gen-trace", "FILE", "", "generate a trace CSV, write it, and exit"},
    {"--gen", "KIND", "poisson", "--gen-trace arrival process: poisson|burst|diurnal"},
    {"--arrivals", "N", "64", "--gen-trace: arrivals in the generated trace"},
    {"--rate", "R", "200", "--gen-trace: base arrival rate (per second)"},
    {"--hold-ms", "MS", "120", "--gen-trace: mean embedding lifetime"},
    {"--mutations-per-arrival", "R", "0",
     "--gen-trace: interleaved host-mutation events per arrival"},
};

void printHelp(std::ostream& out) {
  out << "netembed_cli — the embedding service as a command-line tool\n"
         "usage: netembed_cli [flags]\n\n";
  util::TablePrinter table({"flag", "arg", "default", "what"});
  for (const FlagDoc& f : kFlags) table.addRow({f.flag, f.arg, f.def, f.what});
  table.print(out);
}

/// Host for trace mode: the default is a capacity-annotated Waxman substrate;
/// a --host file is used as-is, with uniform capacities stamped onto nodes /
/// edges that lack them (demand accounting needs both attrs present).
graph::Graph traceHost(const util::ArgParser& args, std::uint64_t seed) {
  const double cpuCapacity = args.getDouble("cpu-capacity", 16.0);
  const double bwCapacity = args.getDouble("bw-capacity", 24.0);
  const std::string path = args.getString("host", "");
  if (path.empty()) return sim::capacitatedHost(60, seed, cpuCapacity, bwCapacity);
  graph::Graph host = loadHost(path, seed);
  for (graph::NodeId n = 0; n < host.nodeCount(); ++n) {
    if (!host.nodeAttrs(n).has("cpu")) host.nodeAttrs(n).set("cpu", cpuCapacity);
  }
  for (graph::EdgeId e = 0; e < host.edgeCount(); ++e) {
    if (!host.edgeAttrs(e).has("bw")) host.edgeAttrs(e).set("bw", bwCapacity);
  }
  return host;
}

int runGenTrace(const util::ArgParser& args, std::uint64_t seed) {
  const std::string path = args.getString("gen-trace", "");
  sim::TraceGenOptions g;
  g.seed = seed;
  g.arrivals = static_cast<std::size_t>(args.getInt("arrivals", 64));
  g.arrivalsPerSec = args.getDouble("rate", 200.0);
  g.meanHoldMs = args.getDouble("hold-ms", 120.0);
  g.mutationsPerArrival = args.getDouble("mutations-per-arrival", 0.0);
  const std::string kind = args.getString("gen", "poisson");
  sim::Trace trace;
  if (kind == "poisson") {
    trace = sim::poissonTrace(g);
  } else if (kind == "burst") {
    trace = sim::burstTrace(g);
  } else if (kind == "diurnal") {
    trace = sim::diurnalTrace(g);
  } else {
    throw std::runtime_error("unknown --gen '" + kind + "' (poisson|burst|diurnal)");
  }
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open '" + path + "' for writing");
  trace.writeCsv(out);
  std::cerr << "wrote " << trace.events.size() << " events ("
            << trace.arrivalCount() << " arrivals, " << kind << ", horizon "
            << trace.horizonUs() / 1000 << " ms) to " << path << '\n';
  return 0;
}

/// Dynamic-workload mode: replay a trace CSV through the sim::Driver and
/// print the scorecard. Virtual clock by default (byte-deterministic per
/// seed); --wall replays on a scaled real-time clock instead.
int runTraceReplay(const util::ArgParser& args, std::uint64_t seed) {
  const std::string path = args.getString("trace", "");
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file '" + path + "'");
  const sim::Trace trace = sim::Trace::readCsv(in);

  graph::Graph host = traceHost(args, seed);
  std::cerr << "host: " << host.nodeCount() << " nodes, " << host.edgeCount()
            << " edges | trace: " << trace.events.size() << " events ("
            << trace.arrivalCount() << " arrivals)\n";

  sim::DriverOptions opt;
  opt.clock = args.getBool("wall") ? sim::ClockMode::Wall : sim::ClockMode::Virtual;
  opt.service.workers = 2;
  opt.buckets = static_cast<std::size_t>(args.getInt("buckets", 8));
  opt.retryAttempts = static_cast<std::uint32_t>(
      std::max<long long>(args.getInt("retry", 1), 1));
  if (args.getBool("adaptive")) {
    opt.service.control.queue.adaptiveCapacity = true;
    opt.service.control.queue.targetQueueDelay =
        std::chrono::milliseconds(args.getInt("target-delay-ms", 250));
  }
  opt.service.control.propagateSlack = args.getBool("slack");
  if (args.getBool("preempt")) {
    opt.service.control.preemptLowForHigh = true;
    opt.service.control.requeuePreempted = true;
  }

  sim::Driver driver(std::move(host), opt);
  const sim::Scorecard card =
      driver.run(trace, path, sim::clockModeName(opt.clock), seed);
  card.printTable(std::cout);
  return 0;
}

/// Replay mode: interleave monitoring-style host mutations with queries
/// against the queued service, then report how many stage-1 plans were
/// patched / reused / rebuilt across the induced version bumps.
int runMutateReplay(graph::Graph host, service::EmbedRequest request,
                    double mutateRate, std::size_t replays, std::uint64_t seed,
                    const service::AsyncServiceOptions& serviceOptions) {
  if (!request.algorithm.has_value()) {
    // The replay measures the stage-1 delta path; the auto-chooser may pick
    // LNS (no stage-1 plan) on dense hosts, which would exercise nothing.
    request.algorithm = core::Algorithm::ECF;
    std::cerr << "replay: pinning --algo ecf (stage-1 plans are the point)\n";
  }
  service::AsyncNetEmbedService svc{std::move(host), serviceOptions};
  util::Rng rng(util::deriveSeed(seed, 99));
  const std::uint64_t buildsBefore = core::filterPlanBuilds();
  const std::uint64_t patchesBefore = core::filterPlanPatches();

  double pendingMutations = 0.0;
  std::size_t mutations = 0;
  std::size_t feasible = 0;
  bool allDone = true;
  for (std::size_t i = 0; i < replays; ++i) {
    pendingMutations += mutateRate;
    for (; pendingMutations >= 1.0; pendingMutations -= 1.0) {
      const auto snapshot = svc.hostSnapshot();
      if (mutations % 2 == 0 && snapshot->edgeCount() > 0) {
        // Constraint-relevant (the demo's delay-window constraint reads
        // minDelay): nudge one link's floor delay by ~1%.
        const auto e = static_cast<graph::EdgeId>(rng.index(snapshot->edgeCount()));
        const double delay = snapshot->edgeAttrs(e).getDouble("minDelay", 10.0);
        svc.setEdgeMetric(snapshot->edgeSource(e), snapshot->edgeTarget(e),
                          "minDelay", delay * (rng.bernoulli(0.5) ? 1.01 : 0.99));
      } else {
        // Unreferenced by the constraints: provably irrelevant to cached
        // plans, which must be reused as-is (no patch, no rebuild).
        const auto n = static_cast<graph::NodeId>(rng.index(snapshot->nodeCount()));
        svc.setNodeAttr(n, "load", rng.uniform(0.0, 1.0));
      }
      ++mutations;
    }
    service::EmbedRequest query = request;
    const service::EmbedResponse response = svc.submit(std::move(query)).get();
    std::cerr << "replay " << (i + 1) << "/" << replays << ": v"
              << response.modelVersion << " "
              << service::requestStatusName(response.status) << " | "
              << response.diagnostics << '\n';
    if (response.status != service::RequestStatus::Done) allDone = false;
    if (response.result.feasible()) ++feasible;
  }

  const auto cache = svc.planCacheStats();
  std::cout << "replay: " << replays << " queries, " << mutations
            << " mutations, " << feasible << " feasible\n"
            << "plan cache: " << cache.hits << " hits, " << cache.misses
            << " misses, " << cache.rekeys << " rekeys, " << cache.invalidations
            << " invalidations\n"
            << "stage-1 plans: " << core::filterPlanBuilds() - buildsBefore
            << " built, " << core::filterPlanPatches() - patchesBefore
            << " patched\n";
  if (serviceOptions.control.queue.adaptiveCapacity ||
      serviceOptions.control.preemptLowForHigh) {
    const auto queue = svc.queueStats();
    const auto control = svc.controlStats();
    std::cout << "control plane: effective capacity " << queue.effectiveCapacity
              << ", " << control.preemptionsFired << " preemptions fired, "
              << control.preemptRequeues << " re-queued\n";
    for (const auto& cls : queue.classes) {
      std::cout << "  class " << cls.priority << ": " << cls.completed
                << " completed, service EWMA "
                << util::formatFixed(cls.serviceEwmaMs, 2) << " ms, wait p99 "
                << util::formatFixed(cls.waitP99Ms, 2) << " ms\n";
    }
  }
  {
    // The fault-tolerance ledger: zero all the way down on a healthy run,
    // and the first place to look when a replay reports anything but Done.
    const auto control = svc.controlStats();
    std::cout << "fault tolerance: " << control.transientRetries
              << " transient retries, " << control.retriesAbandoned
              << " abandoned, " << control.cacheBypassFallbacks
              << " plan-cache bypasses, " << control.poolWorkersLost
              << " pool workers lost, " << control.poolSerialFallbacks
              << " serial fallbacks\n";
  }
  return allDone ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::ArgParser args(argc, argv);
    if (args.getBool("help")) {
      printHelp(std::cout);
      return 0;
    }
    const auto seed = args.getSeed("seed", 42);
    if (args.has("gen-trace")) return runGenTrace(args, seed);
    if (args.has("trace")) return runTraceReplay(args, seed);

    graph::Graph host = loadHost(args.getString("host", ""), seed);
    std::cerr << "host: " << host.nodeCount() << " nodes, " << host.edgeCount()
              << " edges | simd: "
              << util::simd::isaName(util::simd::activeIsa()) << '\n';

    graph::Graph query;
    std::string edgeConstraint = args.getString("edge-constraint", "");
    if (args.getBool("demo")) {
      util::Rng rng(seed);
      auto sub = topo::sampleConnectedSubgraph(host, 12, 30, rng);
      query = std::move(sub.graph);
      topo::widenDelayWindows(query, 0.02);
      if (edgeConstraint.empty()) edgeConstraint = topo::delayWindowConstraint();
      std::cerr << "demo query sampled from host (12 nodes)\n";
    } else {
      const std::string queryPath = args.getString("query", "");
      if (queryPath.empty()) {
        std::cerr << "error: --query FILE (or --demo) is required; see header "
                     "comment for usage\n";
        return 2;
      }
      query = graphml::readFile(queryPath);
    }
    std::cerr << "query: " << query.nodeCount() << " nodes, " << query.edgeCount()
              << " edges\n";

    service::EmbedRequest request;
    request.query = std::move(query);
    request.edgeConstraint = edgeConstraint;
    request.nodeConstraint = args.getString("node-constraint", "");
    request.algorithm = parseAlgo(args.getString("algo", "auto"));
    request.options.maxSolutions = static_cast<std::size_t>(args.getInt("max", 1));
    request.options.storeLimit = std::max<std::size_t>(request.options.maxSolutions, 16);
    request.options.timeout = std::chrono::milliseconds(args.getInt("timeout", 10000));
    request.options.ordering = parseOrdering(args.getString("ordering", "auto"));
    request.options.shards =
        static_cast<std::size_t>(args.getInt("shards", 1));
    request.options.seed = seed;
    request.qos.priority = parsePriority(args.getString("priority", "normal"));
    request.qos.tenant = args.getSeed("tenant", 0);
    request.qos.retry.maxAttempts =
        static_cast<std::uint32_t>(std::max<long long>(args.getInt("retry", 1), 1));
    const auto deadlineMs = args.getInt("deadline-ms", 0);
    if (deadlineMs > 0) {
      request.qos.admissionDeadline = std::chrono::milliseconds(deadlineMs);
      request.qos.computeBudget = std::chrono::milliseconds(deadlineMs);
    }
    std::cerr << "qos: priority=" << service::priorityName(request.qos.priority)
              << " tenant=" << request.qos.tenant
              << " deadline-ms=" << deadlineMs
              << " | ordering=" << core::orderingName(request.options.ordering)
              << '\n';

    const double mutateRate = args.getDouble("mutate-rate", 0.0);
    if (mutateRate > 0.0) {
      const auto replays = static_cast<std::size_t>(args.getInt("replay", 8));
      service::AsyncServiceOptions serviceOptions;
      if (args.getBool("adaptive")) {
        serviceOptions.control.queue.adaptiveCapacity = true;
        serviceOptions.control.queue.targetQueueDelay =
            std::chrono::milliseconds(args.getInt("target-delay-ms", 250));
        serviceOptions.control.queue.lowPriorityShedWatermark = 0.9;
        serviceOptions.overloadPolicy = util::OverloadPolicy::ShedLowestPriority;
      }
      serviceOptions.control.propagateSlack = args.getBool("slack");
      if (args.getBool("preempt")) {
        serviceOptions.control.preemptLowForHigh = true;
        serviceOptions.control.requeuePreempted = true;
      }
      return runMutateReplay(std::move(host), std::move(request), mutateRate,
                             replays, seed, serviceOptions);
    }

    service::NetEmbedService svc{service::NetworkModel(std::move(host))};
    // The lifecycle API: solutions stream out as the search admits them; the
    // terminal response still carries the stored mappings printed below.
    service::TicketCallbacks callbacks;
    std::atomic<std::uint64_t> streamed{0};
    callbacks.onSolution = [&](const core::Mapping& m) {
      std::cerr << "streamed #" << streamed.fetch_add(1) + 1 << ": "
                << core::formatMapping(m, request.query, svc.model().host())
                << '\n';
      return true;
    };
    service::SubmitTicket ticket = svc.submitTicketed(request, std::move(callbacks));
    const service::EmbedResponse response = ticket.get();
    std::cerr << "status: " << service::requestStatusName(response.status)
              << " | " << response.diagnostics << '\n';

    if (!response.result.feasible()) {
      std::cout << "no feasible embedding ("
                << core::outcomeName(response.result.outcome) << ")\n";
      return 1;
    }
    if (args.getBool("csv")) {
      util::CsvWriter csv(std::cout);
      std::vector<std::string> header{"mapping"};
      for (graph::NodeId v = 0; v < request.query.nodeCount(); ++v) {
        header.push_back(request.query.nodeName(v));
      }
      csv.row(header);
      for (std::size_t i = 0; i < response.result.mappings.size(); ++i) {
        std::vector<std::string> row{std::to_string(i)};
        for (const graph::NodeId r : response.result.mappings[i]) {
          row.push_back(svc.model().host().nodeName(r));
        }
        csv.row(row);
      }
    } else {
      for (const core::Mapping& m : response.result.mappings) {
        std::cout << core::formatMapping(m, request.query, svc.model().host()) << '\n';
      }
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 2;
  }
}
