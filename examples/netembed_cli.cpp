// netembed_cli — the embedding service as a command-line tool.
//
// Feed it a hosting network (GraphML or all-pairs-ping text) and a query
// network (GraphML), plus constraint expressions, and it prints feasible
// mappings. This is the "integrated service" face of the paper (§III/Fig 1)
// for scripted use.
//
//   # find 3 embeddings of query.graphml into a synthetic PlanetLab trace
//   $ ./netembed_cli --query q.graphml --max 3
//           --edge-constraint "rEdge.avgDelay <= vEdge.maxDelay"
//     (one shell command, wrapped here for width)
//
//   # explicit host file + algorithm + CSV of the mappings
//   $ ./netembed_cli --host trace.ping --query q.graphml --algo lns --csv
//
// Flags:
//   --host FILE        hosting network (.graphml or all-pairs-ping text);
//                      default: built-in synthetic PlanetLab trace
//   --query FILE       query network (.graphml); required unless --demo
//   --demo             use a built-in demo query sampled from the host
//   --edge-constraint  expression over vEdge/rEdge/vSource/... (default none)
//   --node-constraint  expression over vNode/rNode (default none)
//   --algo NAME        ecf | rwb | lns | naive | anneal | genetic |
//                      portfolio | auto (default auto; auto races the
//                      portfolio for first-match queries)
//   --max N            stop after N mappings (default 1; 0 = all)
//   --ordering MODE    static | dynamic variable order for the filtered
//                      engines (default static — the paper's Lemma-1 order;
//                      dynamic re-picks the smallest live domain each depth)
//   --timeout MS       search budget (default 10000)
//   --seed N           RNG seed (default 42)
//   --csv              machine-readable mapping output
//   --priority P       QoS class: low | normal | high (default normal)
//   --deadline-ms MS   QoS compute budget once running (0 = none; tightens
//                      --timeout, never widens it). Also recorded as the
//                      admission deadline, which binds only when the request
//                      goes through the queued AsyncNetEmbedService — this
//                      tool's direct ticket submission has no queue wait.
//   --tenant N         QoS fair-queueing tenant id (default 0)
//   --mutate-rate R    replay mode: run --replay queries through the queued
//                      AsyncNetEmbedService, applying R monitoring-style
//                      attribute updates to the live host model before each
//                      query (half touch a constraint-relevant delay metric,
//                      half an unreferenced load attribute). Exercises the
//                      delta-first mutation path end to end: structurally
//                      shared snapshots, plan-cache re-keying, and
//                      FilterPlan patch/reuse — the cache/patch counters are
//                      reported at the end. 0 (default) = off.
//   --replay N         queries per replay run (default 8)
//   --adaptive         replay mode: enable the queued service's adaptive
//                      admission control (capacity derived from per-class
//                      service-time EWMAs via Little's law, plus an early
//                      low-priority shed watermark at 0.9 of capacity)
//   --target-delay-ms  queue delay the adaptive capacity aims for
//                      (default 250; implies nothing without --adaptive)
//   --slack            replay mode: convert remaining admission slack into
//                      the compute budget at dispatch (binds only for
//                      requests with --deadline-ms)
//   --preempt          replay mode: let queued High-class work preempt the
//                      longest-running lower-class search (re-queued rather
//                      than resolved Preempted); preemption counters are
//                      reported at the end
//   --retry N          QoS retry budget: re-dispatch a transiently failed
//                      request up to N attempts total, with exponential
//                      backoff between attempts (default 1 = no retries).
//                      Applies to both the direct ticket path and replay
//                      mode; replay mode also reports the fault-tolerance
//                      counters (retries, abandons, degradations)
//
// Outside replay mode the request runs through the ticket API
// (submitTicketed): mappings stream to stderr as the search finds them, and
// the terminal status/diagnostics line reports the request's lifecycle
// outcome.

#include <atomic>
#include <fstream>
#include <iostream>
#include <sstream>

#include "netembed/netembed.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/simd.hpp"

using namespace netembed;

namespace {

graph::Graph loadHost(const std::string& path, std::uint64_t seed) {
  if (path.empty()) {
    trace::PlanetLabOptions options;
    options.seed = seed;
    return trace::synthesize(options);
  }
  if (path.size() > 8 && path.substr(path.size() - 8) == ".graphml") {
    return graphml::readFile(path);
  }
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open host file '" + path + "'");
  return trace::readAllPairsPing(in);
}

service::Priority parsePriority(const std::string& name) {
  if (name == "low") return service::Priority::Low;
  if (name == "normal") return service::Priority::Normal;
  if (name == "high") return service::Priority::High;
  throw std::runtime_error("unknown --priority '" + name + "' (low|normal|high)");
}

core::Ordering parseOrdering(const std::string& name) {
  if (name == "static") return core::Ordering::Static;
  if (name == "dynamic") return core::Ordering::Dynamic;
  throw std::runtime_error("unknown --ordering '" + name + "' (static|dynamic)");
}

std::optional<core::Algorithm> parseAlgo(const std::string& name) {
  if (name == "ecf") return core::Algorithm::ECF;
  if (name == "rwb") return core::Algorithm::RWB;
  if (name == "lns") return core::Algorithm::LNS;
  if (name == "naive") return core::Algorithm::Naive;
  if (name == "anneal") return core::Algorithm::Anneal;
  if (name == "genetic") return core::Algorithm::Genetic;
  if (name == "portfolio") return core::Algorithm::Portfolio;
  if (name == "auto") return std::nullopt;
  throw std::runtime_error("unknown --algo '" + name +
                           "' (ecf|rwb|lns|naive|anneal|genetic|portfolio|auto)");
}

/// Replay mode: interleave monitoring-style host mutations with queries
/// against the queued service, then report how many stage-1 plans were
/// patched / reused / rebuilt across the induced version bumps.
int runMutateReplay(graph::Graph host, service::EmbedRequest request,
                    double mutateRate, std::size_t replays, std::uint64_t seed,
                    const service::AsyncServiceOptions& serviceOptions) {
  if (!request.algorithm.has_value()) {
    // The replay measures the stage-1 delta path; the auto-chooser may pick
    // LNS (no stage-1 plan) on dense hosts, which would exercise nothing.
    request.algorithm = core::Algorithm::ECF;
    std::cerr << "replay: pinning --algo ecf (stage-1 plans are the point)\n";
  }
  service::AsyncNetEmbedService svc{std::move(host), serviceOptions};
  util::Rng rng(util::deriveSeed(seed, 99));
  const std::uint64_t buildsBefore = core::filterPlanBuilds();
  const std::uint64_t patchesBefore = core::filterPlanPatches();

  double pendingMutations = 0.0;
  std::size_t mutations = 0;
  std::size_t feasible = 0;
  bool allDone = true;
  for (std::size_t i = 0; i < replays; ++i) {
    pendingMutations += mutateRate;
    for (; pendingMutations >= 1.0; pendingMutations -= 1.0) {
      const auto snapshot = svc.hostSnapshot();
      if (mutations % 2 == 0 && snapshot->edgeCount() > 0) {
        // Constraint-relevant (the demo's delay-window constraint reads
        // minDelay): nudge one link's floor delay by ~1%.
        const auto e = static_cast<graph::EdgeId>(rng.index(snapshot->edgeCount()));
        const double delay = snapshot->edgeAttrs(e).getDouble("minDelay", 10.0);
        svc.setEdgeMetric(snapshot->edgeSource(e), snapshot->edgeTarget(e),
                          "minDelay", delay * (rng.bernoulli(0.5) ? 1.01 : 0.99));
      } else {
        // Unreferenced by the constraints: provably irrelevant to cached
        // plans, which must be reused as-is (no patch, no rebuild).
        const auto n = static_cast<graph::NodeId>(rng.index(snapshot->nodeCount()));
        svc.setNodeAttr(n, "load", rng.uniform(0.0, 1.0));
      }
      ++mutations;
    }
    service::EmbedRequest query = request;
    const service::EmbedResponse response = svc.submit(std::move(query)).get();
    std::cerr << "replay " << (i + 1) << "/" << replays << ": v"
              << response.modelVersion << " "
              << service::requestStatusName(response.status) << " | "
              << response.diagnostics << '\n';
    if (response.status != service::RequestStatus::Done) allDone = false;
    if (response.result.feasible()) ++feasible;
  }

  const auto cache = svc.planCacheStats();
  std::cout << "replay: " << replays << " queries, " << mutations
            << " mutations, " << feasible << " feasible\n"
            << "plan cache: " << cache.hits << " hits, " << cache.misses
            << " misses, " << cache.rekeys << " rekeys, " << cache.invalidations
            << " invalidations\n"
            << "stage-1 plans: " << core::filterPlanBuilds() - buildsBefore
            << " built, " << core::filterPlanPatches() - patchesBefore
            << " patched\n";
  if (serviceOptions.control.queue.adaptiveCapacity ||
      serviceOptions.control.preemptLowForHigh) {
    const auto queue = svc.queueStats();
    const auto control = svc.controlStats();
    std::cout << "control plane: effective capacity " << queue.effectiveCapacity
              << ", " << control.preemptionsFired << " preemptions fired, "
              << control.preemptRequeues << " re-queued\n";
    for (const auto& cls : queue.classes) {
      std::cout << "  class " << cls.priority << ": " << cls.completed
                << " completed, service EWMA "
                << util::formatFixed(cls.serviceEwmaMs, 2) << " ms, wait p99 "
                << util::formatFixed(cls.waitP99Ms, 2) << " ms\n";
    }
  }
  {
    // The fault-tolerance ledger: zero all the way down on a healthy run,
    // and the first place to look when a replay reports anything but Done.
    const auto control = svc.controlStats();
    std::cout << "fault tolerance: " << control.transientRetries
              << " transient retries, " << control.retriesAbandoned
              << " abandoned, " << control.cacheBypassFallbacks
              << " plan-cache bypasses, " << control.poolWorkersLost
              << " pool workers lost, " << control.poolSerialFallbacks
              << " serial fallbacks\n";
  }
  return allDone ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::ArgParser args(argc, argv);
    const auto seed = args.getSeed("seed", 42);

    graph::Graph host = loadHost(args.getString("host", ""), seed);
    std::cerr << "host: " << host.nodeCount() << " nodes, " << host.edgeCount()
              << " edges | simd: "
              << util::simd::isaName(util::simd::activeIsa()) << '\n';

    graph::Graph query;
    std::string edgeConstraint = args.getString("edge-constraint", "");
    if (args.getBool("demo")) {
      util::Rng rng(seed);
      auto sub = topo::sampleConnectedSubgraph(host, 12, 30, rng);
      query = std::move(sub.graph);
      topo::widenDelayWindows(query, 0.02);
      if (edgeConstraint.empty()) edgeConstraint = topo::delayWindowConstraint();
      std::cerr << "demo query sampled from host (12 nodes)\n";
    } else {
      const std::string queryPath = args.getString("query", "");
      if (queryPath.empty()) {
        std::cerr << "error: --query FILE (or --demo) is required; see header "
                     "comment for usage\n";
        return 2;
      }
      query = graphml::readFile(queryPath);
    }
    std::cerr << "query: " << query.nodeCount() << " nodes, " << query.edgeCount()
              << " edges\n";

    service::EmbedRequest request;
    request.query = std::move(query);
    request.edgeConstraint = edgeConstraint;
    request.nodeConstraint = args.getString("node-constraint", "");
    request.algorithm = parseAlgo(args.getString("algo", "auto"));
    request.options.maxSolutions = static_cast<std::size_t>(args.getInt("max", 1));
    request.options.storeLimit = std::max<std::size_t>(request.options.maxSolutions, 16);
    request.options.timeout = std::chrono::milliseconds(args.getInt("timeout", 10000));
    request.options.ordering = parseOrdering(args.getString("ordering", "static"));
    request.options.seed = seed;
    request.qos.priority = parsePriority(args.getString("priority", "normal"));
    request.qos.tenant = args.getSeed("tenant", 0);
    request.qos.retry.maxAttempts =
        static_cast<std::uint32_t>(std::max<long long>(args.getInt("retry", 1), 1));
    const auto deadlineMs = args.getInt("deadline-ms", 0);
    if (deadlineMs > 0) {
      request.qos.admissionDeadline = std::chrono::milliseconds(deadlineMs);
      request.qos.computeBudget = std::chrono::milliseconds(deadlineMs);
    }
    std::cerr << "qos: priority=" << service::priorityName(request.qos.priority)
              << " tenant=" << request.qos.tenant
              << " deadline-ms=" << deadlineMs
              << " | ordering=" << core::orderingName(request.options.ordering)
              << '\n';

    const double mutateRate = args.getDouble("mutate-rate", 0.0);
    if (mutateRate > 0.0) {
      const auto replays = static_cast<std::size_t>(args.getInt("replay", 8));
      service::AsyncServiceOptions serviceOptions;
      if (args.getBool("adaptive")) {
        serviceOptions.control.queue.adaptiveCapacity = true;
        serviceOptions.control.queue.targetQueueDelay =
            std::chrono::milliseconds(args.getInt("target-delay-ms", 250));
        serviceOptions.control.queue.lowPriorityShedWatermark = 0.9;
        serviceOptions.overloadPolicy = util::OverloadPolicy::ShedLowestPriority;
      }
      serviceOptions.control.propagateSlack = args.getBool("slack");
      if (args.getBool("preempt")) {
        serviceOptions.control.preemptLowForHigh = true;
        serviceOptions.control.requeuePreempted = true;
      }
      return runMutateReplay(std::move(host), std::move(request), mutateRate,
                             replays, seed, serviceOptions);
    }

    service::NetEmbedService svc{service::NetworkModel(std::move(host))};
    // The lifecycle API: solutions stream out as the search admits them; the
    // terminal response still carries the stored mappings printed below.
    service::TicketCallbacks callbacks;
    std::atomic<std::uint64_t> streamed{0};
    callbacks.onSolution = [&](const core::Mapping& m) {
      std::cerr << "streamed #" << streamed.fetch_add(1) + 1 << ": "
                << core::formatMapping(m, request.query, svc.model().host())
                << '\n';
      return true;
    };
    service::SubmitTicket ticket = svc.submitTicketed(request, std::move(callbacks));
    const service::EmbedResponse response = ticket.get();
    std::cerr << "status: " << service::requestStatusName(response.status)
              << " | " << response.diagnostics << '\n';

    if (!response.result.feasible()) {
      std::cout << "no feasible embedding ("
                << core::outcomeName(response.result.outcome) << ")\n";
      return 1;
    }
    if (args.getBool("csv")) {
      util::CsvWriter csv(std::cout);
      std::vector<std::string> header{"mapping"};
      for (graph::NodeId v = 0; v < request.query.nodeCount(); ++v) {
        header.push_back(request.query.nodeName(v));
      }
      csv.row(header);
      for (std::size_t i = 0; i < response.result.mappings.size(); ++i) {
        std::vector<std::string> row{std::to_string(i)};
        for (const graph::NodeId r : response.result.mappings[i]) {
          row.push_back(svc.model().host().nodeName(r));
        }
        csv.row(row);
      }
    } else {
      for (const core::Mapping& m : response.result.mappings) {
        std::cout << core::formatMapping(m, request.query, svc.model().host()) << '\n';
      }
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 2;
  }
}
