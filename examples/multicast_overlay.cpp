// Multicast overlay provisioning (paper §III's first scenario): configure an
// overlay distribution tree over a PlanetLab-like infrastructure subject to
// QoS constraints — a low-latency backbone between regional heads plus
// low-delay last-hop links to leaf replicas — then pick the cheapest of the
// returned embeddings (footnote-1 style optimization after satisfaction).
//
//   $ ./multicast_overlay [--seed N] [--heads K] [--leaves M]

#include <iostream>

#include "netembed/netembed.hpp"
#include "util/cli.hpp"

using namespace netembed;

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const auto seed = args.getSeed("seed", 42);
  const auto heads = static_cast<std::size_t>(args.getInt("heads", 3));
  const auto leaves = static_cast<std::size_t>(args.getInt("leaves", 3));

  // Hosting network: the synthetic all-pairs-ping trace.
  trace::PlanetLabOptions traceOptions;
  traceOptions.seed = seed;
  const graph::Graph host = trace::synthesize(traceOptions);
  std::cout << "hosting network: " << host.nodeCount() << " sites, "
            << host.edgeCount() << " measured pairs\n";

  // Query: a two-level distribution tree. Root -> regional heads over
  // wide-area links; each head fans out to nearby leaf replicas.
  topo::CompositeSpec spec;
  spec.rootShape = topo::Shape::Star;   // root at the star hub
  spec.groups = heads + 1;              // hub group + regional groups
  spec.leafShape = topo::Shape::Star;   // head fans out to leaves
  spec.groupSize = leaves + 1;
  graph::Graph query = topo::composite(spec);
  // Wide-area (root) links tolerate 75..350 ms; last-hop (leaf) links must
  // be regional: 1..75 ms.
  topo::assignLevelDelayWindows(query, 75.0, 350.0, 1.0, 75.0);
  std::cout << "query: distribution tree with " << query.nodeCount() << " nodes / "
            << query.edgeCount() << " links\n";

  // LNS is the right engine for regular composite queries (§VII-D) — the
  // service would auto-pick it too (service::NetEmbedService::chooseAlgorithm).
  const expr::ConstraintSet constraints =
      expr::ConstraintSet::edgeOnly(topo::avgDelayWindowConstraint());
  const core::Problem problem(query, host, constraints);

  core::SearchOptions options;
  options.maxSolutions = 200;  // a representative region of the solution space
  options.storeLimit = 1;
  options.timeout = std::chrono::milliseconds(2000);

  // Rank candidate embeddings by total tree delay.
  const auto cost = service::totalEdgeAttrCost(query, host, "avgDelay");
  const auto best =
      service::enumerateAndOptimize(problem, core::Algorithm::LNS, options, cost);

  if (!best.best) {
    std::cout << "no feasible distribution tree found ("
              << core::outcomeName(best.search.outcome) << ")\n";
    return 1;
  }
  std::cout << "found " << best.search.solutionCount << " embeddings in "
            << best.search.stats.searchMs << " ms; cheapest total delay = "
            << best.bestCost << " ms\n";

  // Show the tree placement.
  const core::Mapping& m = *best.best;
  for (graph::EdgeId e = 0; e < query.edgeCount(); ++e) {
    const auto qa = query.edgeSource(e);
    const auto qb = query.edgeTarget(e);
    const auto he = host.findEdge(m[qa], m[qb]);
    std::cout << "  " << query.nodeName(qa) << "@" << host.nodeName(m[qa]) << " -> "
              << query.nodeName(qb) << "@" << host.nodeName(m[qb]) << "  ("
              << host.edgeAttrs(*he).getDouble("avgDelay", -1) << " ms, "
              << query.edgeAttrs(e).at("level").asString() << ")\n";
  }

  const auto verdict = core::verifyMapping(problem, m);
  std::cout << (verdict.ok ? "placement verified OK\n"
                           : "verification failed: " + verdict.reason + "\n");
  return verdict.ok ? 0 : 1;
}
